//! The session core shared by the stdio server ([`crate::serve`]) and the
//! socket front-end ([`crate::net`]): one bounded worker pool executing
//! wire requests from any number of concurrent sessions, with
//! **per-resource ordering lanes** instead of a global barrier.
//!
//! # Lanes
//!
//! Every dispatched request claims the lanes of the resources it touches
//! — `ds:<name>` for a dataset registry entry, `mon:<name>` for a
//! monitor, plus one registry-listing lane — in either `Shared` or
//! `Exclusive` mode:
//!
//! | request            | claims                                              |
//! |--------------------|-----------------------------------------------------|
//! | `audit`            | `ds:D` shared                                       |
//! | `register`         | `ds:N` exclusive, registry shared                   |
//! | `datasets`         | registry exclusive                                  |
//! | `register_monitor` | `mon:M` exclusive, `ds:D` shared                    |
//! | `update`           | `mon:M` exclusive, `ds:D` exclusive, registry shared|
//! | `snapshot`         | `mon:M` shared                                      |
//! | `shutdown`         | none (answered from the session loop)               |
//!
//! A shared claim waits only for earlier *exclusive* claims on the lane;
//! an exclusive claim waits for *everything* dispatched before it on the
//! lane. So updates to the same monitor stay ordered against its
//! snapshots and against audits of its dataset — exactly the old global
//! barrier guarantee, per resource — while updates to *different*
//! monitors, and audits on one dataset, proceed fully in parallel. A
//! dataset `register` is a registry-entry barrier (its own `ds:` lane),
//! not a whole-stream one.
//!
//! # Why blocking lane waits cannot starve the pool
//!
//! Lane tickets are assigned and the job is enqueued under one dispatch
//! lock, so queue order equals ticket order globally. Workers pop the
//! shared queue FIFO, so whenever a popped job waits on a lane, every
//! job it waits for was popped earlier; among popped-but-unfinished jobs
//! the earliest-dispatched one is always runnable, so some worker always
//! makes progress.
//!
//! # Sessions
//!
//! A [`Session`] owns one request stream: it parses lines, computes lane
//! claims, and submits jobs tagged with its private response channel;
//! [`write_responses`] reorders completed responses back into request
//! order. A [`Gate`] caps responses in flight per session (the pipeline
//! window), so a client that never reads its socket bounds its own
//! memory and stalls only itself — the pool and every other session keep
//! moving.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::serve::ServeSummary;
use crate::{wire, AuditService};

/// Lane key for the dataset-registry listing (`datasets` op). The `!`
/// keeps it outside the `ds:`/`mon:` namespaces.
const REGISTRY_LANE: &str = "registry!";

/// Prune idle lanes once the map holds this many entries.
const LANE_GC_THRESHOLD: usize = 4096;

/// How a job uses a lane: `Shared` claims run concurrently with each
/// other; an `Exclusive` claim is a lane-local barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Concurrent with other shared claims (audits, snapshots).
    Shared,
    /// Ordered against everything on the lane (registers, updates).
    Exclusive,
}

#[derive(Default)]
struct LaneState {
    shared_dispatched: u64,
    excl_dispatched: u64,
    shared_done: u64,
    excl_done: u64,
}

/// One resource's ordering state. Jobs wait on [`Claim`]s against it.
#[derive(Default)]
struct Lane {
    state: Mutex<LaneState>,
    turned: Condvar,
}

/// A job's ticket on one lane: the dispatch counts it must wait out
/// before executing.
struct Claim {
    lane: Arc<Lane>,
    mode: Mode,
    excl_before: u64,
    shared_before: u64,
}

impl Claim {
    /// Blocks until every lane predecessor this claim orders against has
    /// completed. See the module docs for why this cannot starve the
    /// pool.
    fn wait(&self) {
        let mut st = self.lane.state.lock().expect("lane lock");
        loop {
            let ready = match self.mode {
                Mode::Shared => st.excl_done >= self.excl_before,
                Mode::Exclusive => {
                    st.excl_done >= self.excl_before && st.shared_done >= self.shared_before
                }
            };
            if ready {
                return;
            }
            st = self.lane.turned.wait(st).expect("lane lock"); // lint:allow(panic-path) -- Condvar::wait only fails on mutex poison, i.e. another worker already panicked; propagates an existing panic rather than creating a path
        }
    }

    fn complete(self) {
        let mut st = self.lane.state.lock().expect("lane lock");
        match self.mode {
            Mode::Shared => st.shared_done += 1,
            Mode::Exclusive => st.excl_done += 1,
        }
        drop(st);
        self.lane.turned.notify_all();
    }
}

/// `(seq, response line, ok)` flowing from workers to a session writer.
pub(crate) type Response = (usize, String, bool);

/// What a worker does for one job.
pub(crate) enum Work {
    /// Execute a parsed wire request.
    Request(Box<wire::Request>),
    /// Forward an already-rendered response (parse errors, shutdown
    /// acknowledgements), preserving order and backpressure.
    Ready(String, bool),
    /// Run an arbitrary closure — lane-semantics tests only.
    #[cfg(test)]
    Call(Box<dyn FnOnce() -> (String, bool) + Send>),
}

/// One unit of work in the shared bounded queue.
struct Job {
    seq: usize,
    res_tx: mpsc::Sender<Response>,
    dead: Arc<AtomicBool>,
    claims: Vec<Claim>,
    work: Work,
}

struct Dispatch {
    /// `None` once [`Executor::close`] ran: workers drain and exit.
    job_tx: Option<mpsc::SyncSender<Job>>,
    lanes: HashMap<String, Arc<Lane>>,
}

/// The shared bounded job pool: lane bookkeeping plus the queue every
/// session dispatches into. Construct with [`Executor::new`], spawn the
/// workers inside a thread scope with [`Executor::start_workers`], and
/// call [`Executor::close`] once every session has stopped dispatching
/// so the scope can join.
pub(crate) struct Executor {
    dispatch: Mutex<Dispatch>,
    job_rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    workers: usize,
    strip_timing: bool,
}

impl Executor {
    pub(crate) fn new(workers: usize, strip_timing: bool) -> Executor {
        let workers = workers.max(1);
        // Bounded: a session reading faster than the pool drains blocks
        // in submit — that is the global queue backpressure.
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(workers * 4);
        Executor {
            dispatch: Mutex::new(Dispatch {
                job_tx: Some(job_tx),
                lanes: HashMap::new(),
            }),
            job_rx: Arc::new(Mutex::new(job_rx)),
            workers,
            strip_timing,
        }
    }

    /// Spawns the worker threads into `scope`. They exit when
    /// [`Executor::close`] drops the queue sender.
    pub(crate) fn start_workers<'scope, 'env>(
        &self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        service: &'env AuditService,
    ) {
        for _ in 0..self.workers {
            let job_rx = Arc::clone(&self.job_rx);
            let strip_timing = self.strip_timing;
            scope.spawn(move || worker_loop(service, strip_timing, &job_rx));
        }
    }

    /// Assigns lane tickets and enqueues the job **atomically** (one
    /// dispatch lock), so queue order equals ticket order — the progress
    /// guarantee the blocking claim waits rely on. Blocking here when
    /// the queue is full is the global backpressure. Returns `false` if
    /// the executor was already closed (the job is dropped).
    pub(crate) fn submit(
        &self,
        seq: usize,
        res_tx: mpsc::Sender<Response>,
        dead: Arc<AtomicBool>,
        lanes: &[(String, Mode)],
        work: Work,
    ) -> bool {
        let mut d = self.dispatch.lock().expect("dispatch lock");
        let Some(job_tx) = d.job_tx.clone() else {
            return false;
        };
        if d.lanes.len() > LANE_GC_THRESHOLD {
            // A lane referenced only by the map has no outstanding
            // claims (claims hold an Arc until completion) — safe to
            // forget; a later op on the name gets a fresh lane.
            d.lanes.retain(|_, lane| Arc::strong_count(lane) > 1);
        }
        let claims: Vec<Claim> = lanes
            .iter()
            .map(|(key, mode)| {
                let lane = Arc::clone(d.lanes.entry(key.clone()).or_default());
                let mut st = lane.state.lock().expect("lane lock");
                let claim = Claim {
                    mode: *mode,
                    excl_before: st.excl_dispatched,
                    shared_before: st.shared_dispatched,
                    lane: Arc::clone(&lane),
                };
                match mode {
                    Mode::Shared => st.shared_dispatched += 1,
                    Mode::Exclusive => st.excl_dispatched += 1,
                }
                drop(st);
                claim
            })
            .collect();
        // Send while still holding the dispatch lock: queue order must
        // equal ticket order.
        // lint:allow(guard-across-blocking) -- deliberate: the job channel is unbounded, so send never blocks; holding `dispatch` is what makes queue order equal ticket order
        let _ = job_tx.send(Job {
            seq,
            res_tx,
            dead,
            claims,
            work,
        });
        true
    }

    /// Drops the queue sender: workers finish what is queued, then exit.
    pub(crate) fn close(&self) {
        self.dispatch.lock().expect("dispatch lock").job_tx = None;
    }
}

fn worker_loop(service: &AuditService, strip_timing: bool, job_rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        // Hold the lock only while popping, not while working.
        // lint:allow(guard-across-blocking) -- deliberate: the guard serializes poppers; recv only blocks while the queue is empty, when no other worker needs the lock
        let job = job_rx.lock().expect("job queue lock").recv();
        let Ok(job) = job else { break };
        for claim in &job.claims {
            claim.wait();
        }
        let Job {
            seq,
            res_tx,
            dead,
            claims,
            work,
        } = job;
        // A dead session (output error, peer gone) has nowhere to
        // deliver: skip the work, but still complete the lane claims or
        // every later job on those lanes would wait forever.
        if !dead.load(Ordering::Relaxed) {
            let (line, ok) = match work {
                Work::Ready(line, ok) => (line, ok),
                Work::Request(request) => {
                    let response = wire::execute(service, &request, strip_timing);
                    let ok = response
                        .get("ok")
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false);
                    (response.render(), ok)
                }
                #[cfg(test)]
                Work::Call(f) => f(),
            };
            if res_tx.send((seq, line, ok)).is_err() {
                dead.store(true, Ordering::Relaxed);
            }
        }
        for claim in claims {
            claim.complete();
        }
    }
}

/// Per-session pipeline window: at most `limit` requests may be past
/// dispatch but not yet written. Bounds the reorder buffer and the
/// response channel of a session whose output has stalled (a client
/// that never reads), without blocking any worker.
pub(crate) struct Gate {
    emitted: Mutex<usize>,
    advanced: Condvar,
    limit: usize,
}

impl Gate {
    pub(crate) fn new(limit: usize) -> Gate {
        Gate {
            emitted: Mutex::new(0),
            advanced: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// Blocks until request `seq` fits in the window (or the session
    /// died — polled, so a writer that errors without a final notify
    /// cannot strand the reader).
    fn admit(&self, seq: usize, dead: &AtomicBool) {
        let mut emitted = self.emitted.lock().expect("gate lock");
        while seq.saturating_sub(*emitted) >= self.limit && !dead.load(Ordering::Relaxed) {
            let (guard, _) = self
                .advanced
                .wait_timeout(emitted, Duration::from_millis(50))
                .expect("gate lock"); // lint:allow(panic-path) -- Condvar::wait_timeout only fails on mutex poison, i.e. the writer thread already panicked; propagates an existing panic rather than creating a path
            emitted = guard;
        }
    }

    fn advance(&self) {
        *self.emitted.lock().expect("gate lock") += 1;
        self.advanced.notify_all();
    }

    fn wake(&self) {
        self.advanced.notify_all();
    }
}

/// What dispatching one line decided about the rest of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineOutcome {
    /// Keep reading.
    Continue,
    /// The line was a `shutdown` op: its acknowledgement is queued; stop
    /// reading and begin the graceful drain.
    Shutdown,
}

/// One request stream bound to a shared [`Executor`]: parses lines,
/// computes lane claims, submits jobs tagged with this session's
/// response channel and sequence numbers.
pub(crate) struct Session<'a> {
    exec: &'a Executor,
    service: &'a AuditService,
    res_tx: mpsc::Sender<Response>,
    dead: Arc<AtomicBool>,
    gate: Arc<Gate>,
    seq: usize,
    /// Monitor → dataset, learned from `register_monitor` lines, so an
    /// `update` can claim its dataset lane without racing the registry.
    monitor_datasets: HashMap<String, String>,
}

impl<'a> Session<'a> {
    pub(crate) fn new(
        exec: &'a Executor,
        service: &'a AuditService,
        res_tx: mpsc::Sender<Response>,
        dead: Arc<AtomicBool>,
        gate: Arc<Gate>,
    ) -> Session<'a> {
        Session {
            exec,
            service,
            res_tx,
            dead,
            gate,
            seq: 0,
            monitor_datasets: HashMap::new(),
        }
    }

    /// Responses stopped being deliverable (the writer hit an output
    /// error or the peer vanished): reading further input is pointless.
    pub(crate) fn dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Parses and dispatches one input line (empty lines are the
    /// caller's to skip). Blocks on the pipeline window and on global
    /// queue backpressure.
    pub(crate) fn dispatch_line(&mut self, line: &str) -> LineOutcome {
        self.gate.admit(self.seq, &self.dead);
        let (lanes, work, outcome) = match wire::parse_line(line) {
            Err((id, e)) => (
                Vec::new(),
                Work::Ready(wire::error_response(id.as_ref(), &e).render(), false),
                LineOutcome::Continue,
            ),
            Ok(request @ wire::Request::Shutdown { .. }) => (
                Vec::new(),
                // Answered inline: the acknowledgement must flush during
                // the drain even though no worker may pick new work.
                Work::Ready(wire::execute(self.service, &request, true).render(), true),
                LineOutcome::Shutdown,
            ),
            Ok(request) => {
                let lanes = self.lanes_for(&request);
                (
                    lanes,
                    Work::Request(Box::new(request)),
                    LineOutcome::Continue,
                )
            }
        };
        self.submit(lanes, work);
        outcome
    }

    /// Dispatches a pre-rendered in-band error (framing violations the
    /// parser never sees: broken UTF-8, an over-long line).
    pub(crate) fn dispatch_error(&mut self, message: String) {
        self.gate.admit(self.seq, &self.dead);
        let line = wire::error_response(None, &crate::ServiceError::BadRequest(message)).render();
        self.submit(Vec::new(), Work::Ready(line, false));
    }

    fn submit(&mut self, lanes: Vec<(String, Mode)>, work: Work) {
        if self.exec.submit(
            self.seq,
            self.res_tx.clone(),
            Arc::clone(&self.dead),
            &lanes,
            work,
        ) {
            self.seq += 1;
        } else {
            // Executor closed under us (server-wide shutdown): nothing
            // will answer; mark the session dead so the read loop stops.
            self.dead.store(true, Ordering::Relaxed);
        }
    }

    /// The lane claims a request needs — the per-resource ordering
    /// contract (see the module docs table).
    fn lanes_for(&mut self, request: &wire::Request) -> Vec<(String, Mode)> {
        use wire::Request as R;
        match request {
            R::Audit { request, .. } => {
                vec![(format!("ds:{}", request.dataset), Mode::Shared)]
            }
            R::Register { name, .. } => vec![
                (format!("ds:{name}"), Mode::Exclusive),
                (REGISTRY_LANE.to_string(), Mode::Shared),
            ],
            R::Datasets { .. } => vec![(REGISTRY_LANE.to_string(), Mode::Exclusive)],
            R::RegisterMonitor { name, spec, .. } => {
                self.monitor_datasets
                    .insert(name.clone(), spec.dataset.clone());
                vec![
                    (format!("mon:{name}"), Mode::Exclusive),
                    (format!("ds:{}", spec.dataset), Mode::Shared),
                ]
            }
            R::MonitorUpdate { monitor, .. } => {
                let mut lanes = vec![(format!("mon:{monitor}"), Mode::Exclusive)];
                // The update republishes the monitor's evolved snapshot
                // under its dataset name: claim that registry entry
                // exclusively so audits bracket the update in stream
                // order, and the listing lane shared so `datasets` sees
                // a settled registry.
                let dataset = self
                    .monitor_datasets
                    .get(monitor.as_str())
                    .cloned()
                    .or_else(|| self.service.monitor_dataset(monitor));
                if let Some(dataset) = dataset {
                    lanes.push((format!("ds:{dataset}"), Mode::Exclusive));
                    lanes.push((REGISTRY_LANE.to_string(), Mode::Shared));
                }
                lanes
            }
            R::MonitorSnapshot { monitor, .. } => {
                vec![(format!("mon:{monitor}"), Mode::Shared)]
            }
            R::Shutdown { .. } => Vec::new(),
        }
    }
}

/// Drains a session's response channel into `output` in request order (a
/// reorder buffer keyed by sequence number), flushing per line and
/// advancing the session's [`Gate`]. Returns when every response sender
/// is gone — the session dropped its handle and all its in-flight jobs
/// completed — which is exactly the per-session drain point.
pub(crate) fn write_responses<W: Write>(
    mut output: W,
    res_rx: &mpsc::Receiver<Response>,
    gate: &Gate,
    dead: &AtomicBool,
) -> std::io::Result<ServeSummary> {
    let mut pending: HashMap<usize, (String, bool)> = HashMap::new();
    let mut next = 0usize;
    let mut summary = ServeSummary {
        requests: 0,
        errors: 0,
    };
    for (seq, line, ok) in res_rx {
        pending.insert(seq, (line, ok));
        while let Some((line, ok)) = pending.remove(&next) {
            let wrote = writeln!(output, "{line}").and_then(|()| output.flush());
            if let Err(e) = wrote {
                // Tell the reader to stop consuming input — nothing it
                // reads can be answered anymore.
                dead.store(true, Ordering::Relaxed);
                gate.wake();
                return Err(e);
            }
            next += 1;
            summary.requests += 1;
            summary.errors += usize::from(!ok);
            gate.advance();
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::RecvTimeoutError;
    use std::time::Duration;

    const TICK: Duration = Duration::from_secs(10);

    fn call(f: impl FnOnce() -> String + Send + 'static) -> Work {
        Work::Call(Box::new(move || (f(), true)))
    }

    /// Submits `work` on `lanes` and returns the session-side response
    /// receiver plumbing shared by every test below.
    fn harness() -> (AuditService, Executor) {
        (AuditService::new(), Executor::new(4, true))
    }

    #[test]
    fn cross_lane_exclusive_jobs_run_in_parallel() {
        // Two *exclusive* jobs on different monitor lanes, forced into a
        // rendezvous: A blocks until B has run. Under the old global
        // barrier (or any accidental cross-lane serialization) A would
        // hold the pool while B never starts — a deadlock this test
        // turns into a visible timeout. This is the "updates to
        // different monitors proceed in parallel; no global stall"
        // guarantee, asserted structurally.
        let (service, exec) = harness();
        let (res_tx, res_rx) = mpsc::channel();
        let dead = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            exec.start_workers(scope, &service);
            let (signal_tx, signal_rx) = mpsc::channel::<()>();
            exec.submit(
                0,
                res_tx.clone(),
                Arc::clone(&dead),
                &[("mon:a".to_string(), Mode::Exclusive)],
                call(move || {
                    signal_rx
                        .recv_timeout(TICK)
                        .expect("job B must run while job A is in flight");
                    "a".to_string()
                }),
            );
            exec.submit(
                1,
                res_tx.clone(),
                Arc::clone(&dead),
                &[("mon:b".to_string(), Mode::Exclusive)],
                call(move || {
                    signal_tx.send(()).expect("job A is waiting");
                    "b".to_string()
                }),
            );
            let mut got = Vec::new();
            for _ in 0..2 {
                let (_, line, _) = res_rx.recv_timeout(TICK).expect("both jobs complete");
                got.push(line);
            }
            got.sort();
            assert_eq!(got, ["a", "b"]);
            exec.close();
        });
    }

    #[test]
    fn shared_claims_on_one_lane_run_in_parallel() {
        // Two *shared* jobs on the same dataset lane, mutually blocking:
        // each waits for the other's signal. If shared claims
        // serialized, this would deadlock — concurrent audits on one
        // dataset must not queue behind each other.
        let (service, exec) = harness();
        let (res_tx, res_rx) = mpsc::channel();
        let dead = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            exec.start_workers(scope, &service);
            let (tx_ab, rx_ab) = mpsc::channel::<()>();
            let (tx_ba, rx_ba) = mpsc::channel::<()>();
            let lane = [("ds:d".to_string(), Mode::Shared)];
            exec.submit(
                0,
                res_tx.clone(),
                Arc::clone(&dead),
                &lane,
                call(move || {
                    tx_ab.send(()).expect("peer waits");
                    rx_ba.recv_timeout(TICK).expect("peer runs concurrently");
                    "a".to_string()
                }),
            );
            exec.submit(
                1,
                res_tx.clone(),
                Arc::clone(&dead),
                &lane,
                call(move || {
                    tx_ba.send(()).expect("peer waits");
                    rx_ab.recv_timeout(TICK).expect("peer runs concurrently");
                    "b".to_string()
                }),
            );
            for _ in 0..2 {
                res_rx.recv_timeout(TICK).expect("both jobs complete");
            }
            exec.close();
        });
    }

    #[test]
    fn exclusive_claims_order_a_lane_and_fence_shared_ones() {
        // One lane, mixed modes, many workers: X(0) S(1) S(2) X(3) S(4).
        // The exclusives must observe every predecessor done; the
        // shareds must observe every earlier exclusive done. Event log
        // order proves it across 50 repeats.
        let (service, exec) = harness();
        std::thread::scope(|scope| {
            exec.start_workers(scope, &service);
            for round in 0..50usize {
                let (res_tx, res_rx) = mpsc::channel();
                let dead = Arc::new(AtomicBool::new(false));
                let log: Arc<Mutex<Vec<usize>>> = Arc::default();
                let modes = [
                    Mode::Exclusive,
                    Mode::Shared,
                    Mode::Shared,
                    Mode::Exclusive,
                    Mode::Shared,
                ];
                for (i, mode) in modes.into_iter().enumerate() {
                    let log = Arc::clone(&log);
                    exec.submit(
                        i,
                        res_tx.clone(),
                        Arc::clone(&dead),
                        &[(format!("mon:m{round}"), mode)],
                        call(move || {
                            log.lock().expect("event log").push(i);
                            String::new()
                        }),
                    );
                }
                for _ in 0..modes.len() {
                    res_rx.recv_timeout(TICK).expect("jobs complete");
                }
                let events = log.lock().expect("event log").clone();
                let at = |i: usize| {
                    events
                        .iter()
                        .position(|&e| e == i)
                        .expect("every job logged")
                };
                assert_eq!(at(0), 0, "round {round}: first exclusive runs first");
                assert!(at(3) > at(1) && at(3) > at(2), "round {round}: {events:?}");
                assert!(at(4) > at(3), "round {round}: {events:?}");
            }
            exec.close();
        });
    }

    #[test]
    fn closed_executor_rejects_jobs() {
        let (service, exec) = harness();
        std::thread::scope(|scope| {
            exec.start_workers(scope, &service);
            exec.close();
            let (res_tx, _res_rx) = mpsc::channel();
            let accepted = exec.submit(
                0,
                res_tx,
                Arc::new(AtomicBool::new(false)),
                &[],
                Work::Ready(String::new(), true),
            );
            assert!(!accepted);
        });
    }

    #[test]
    fn gate_bounds_in_flight_and_unblocks_on_death() {
        let gate = Gate::new(2);
        let dead = AtomicBool::new(false);
        gate.admit(0, &dead);
        gate.admit(1, &dead);
        gate.advance();
        // seq 2 fits only because one response was emitted.
        gate.admit(2, &dead);
        // seq 3 would block; a dead session must not hang the reader.
        dead.store(true, Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        gate.admit(3, &dead);
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn write_responses_reorders_by_sequence() {
        let (res_tx, res_rx) = mpsc::channel();
        res_tx.send((2, "c".to_string(), true)).expect("send");
        res_tx.send((0, "a".to_string(), true)).expect("send");
        res_tx.send((1, "b".to_string(), false)).expect("send");
        drop(res_tx);
        let mut out = Vec::new();
        let gate = Gate::new(8);
        let dead = AtomicBool::new(false);
        let summary = write_responses(&mut out, &res_rx, &gate, &dead).expect("writes");
        assert_eq!(String::from_utf8(out).expect("utf8"), "a\nb\nc\n");
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn lane_gc_spares_lanes_with_pending_claims() {
        // Regression guard for the idle-lane sweep in `submit`: it prunes
        // by Arc strong count once the map passes LANE_GC_THRESHOLD. A
        // lane whose jobs are merely pending — executing, popped and
        // waiting on a claim, or still queued — must survive the sweep;
        // if it were dropped, a later claim on the same name would get a
        // fresh lane with zeroed tickets and jump ahead of the pending
        // exclusives, silently breaking per-resource serialization.
        let (service, exec) = harness();
        let (keep_tx, keep_rx) = mpsc::channel();
        let (flood_tx, flood_rx) = mpsc::channel();
        let dead = Arc::new(AtomicBool::new(false));
        let log: Arc<Mutex<Vec<&'static str>>> = Arc::default();
        std::thread::scope(|scope| {
            exec.start_workers(scope, &service);
            let (release_tx, release_rx) = mpsc::channel::<()>();
            let keep = [("mon:keep".to_string(), Mode::Exclusive)];
            // A occupies a worker inside the lane until released; B and C
            // sit behind it with undischarged exclusive claims.
            {
                let log = Arc::clone(&log);
                exec.submit(
                    0,
                    keep_tx.clone(),
                    Arc::clone(&dead),
                    &keep,
                    call(move || {
                        release_rx
                            .recv_timeout(TICK)
                            .expect("released after the flood");
                        log.lock().expect("event log").push("a");
                        "a".to_string()
                    }),
                );
            }
            for (i, name) in [(1usize, "b"), (2, "c")] {
                let log = Arc::clone(&log);
                exec.submit(
                    i,
                    keep_tx.clone(),
                    Arc::clone(&dead),
                    &keep,
                    call(move || {
                        log.lock().expect("event log").push(name);
                        name.to_string()
                    }),
                );
            }
            // Flood one-shot lanes past the GC threshold while every
            // claim on the keep lane is still pending, so the sweep runs
            // mid-flood with the keep lane at risk.
            let flood = LANE_GC_THRESHOLD + 104;
            for i in 0..flood {
                exec.submit(
                    3 + i,
                    flood_tx.clone(),
                    Arc::clone(&dead),
                    &[(format!("ds:f{i}"), Mode::Exclusive)],
                    Work::Ready(String::new(), true),
                );
            }
            for _ in 0..flood {
                flood_rx.recv_timeout(TICK).expect("flood job completes");
            }
            {
                let d = exec.dispatch.lock().expect("dispatch lock");
                assert!(
                    d.lanes.len() < LANE_GC_THRESHOLD,
                    "the sweep must have pruned idle lanes ({} live)",
                    d.lanes.len()
                );
                assert!(
                    d.lanes.contains_key("mon:keep"),
                    "lane with pending claims was garbage-collected"
                );
            }
            // D joins the lane after the sweep: it must order behind the
            // surviving lane state, not start over on a fresh lane.
            {
                let log = Arc::clone(&log);
                exec.submit(
                    3 + flood,
                    keep_tx.clone(),
                    Arc::clone(&dead),
                    &keep,
                    call(move || {
                        log.lock().expect("event log").push("d");
                        "d".to_string()
                    }),
                );
            }
            assert_eq!(
                keep_rx.recv_timeout(Duration::from_millis(200)),
                Err(RecvTimeoutError::Timeout),
                "nothing on the lane may run before A is released"
            );
            release_tx.send(()).expect("A is waiting");
            let mut got = Vec::new();
            for _ in 0..4 {
                let (_, line, _) = keep_rx.recv_timeout(TICK).expect("lane drains");
                got.push(line);
            }
            assert_eq!(got, ["a", "b", "c", "d"], "lane serialization broken");
            assert_eq!(log.lock().expect("event log").clone(), ["a", "b", "c", "d"]);
            exec.close();
        });
    }

    #[test]
    fn dead_session_skips_work_but_completes_lanes() {
        // A dead session's queued jobs must still tick their lanes, or a
        // later job on the lane (from a live session) would wait forever.
        let (service, exec) = harness();
        let dead = Arc::new(AtomicBool::new(true));
        let (dead_tx, dead_rx) = mpsc::channel();
        let (live_tx, live_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            exec.start_workers(scope, &service);
            exec.submit(
                0,
                dead_tx,
                Arc::clone(&dead),
                &[("mon:x".to_string(), Mode::Exclusive)],
                call(|| "dropped".to_string()),
            );
            exec.submit(
                0,
                live_tx,
                Arc::new(AtomicBool::new(false)),
                &[("mon:x".to_string(), Mode::Exclusive)],
                call(|| "lives".to_string()),
            );
            let (_, line, _) = live_rx.recv_timeout(TICK).expect("lane not wedged");
            assert_eq!(line, "lives");
            assert_eq!(
                dead_rx.recv_timeout(Duration::from_millis(200)),
                Err(RecvTimeoutError::Disconnected),
                "dead session receives nothing"
            );
            exec.close();
        });
    }
}
