//! The socket front-end: TCP and Unix-domain listeners speaking the same
//! strict JSONL wire protocol as [`crate::serve`], one thread per
//! connection over the shared session core.
//!
//! ```text
//! $ rankfair serve-net --listen tcp:127.0.0.1:7878,unix:/tmp/rankfair.sock --workers 8
//! ```
//!
//! Every connection is an independent pipelined session: clients may
//! send many request lines without waiting, and responses come back **in
//! that connection's request order** (a per-connection reorder buffer).
//! All connections share one bounded worker pool and the per-resource
//! ordering lanes of the session core, so updates to different monitors
//! proceed in parallel while updates to the same monitor stay ordered
//! against its snapshots and audits — no global stall.
//!
//! # Backpressure
//!
//! Three bounds keep a hostile or slow client from growing server
//! memory:
//!
//! * [`NetOptions::max_connections`] — excess connections are answered
//!   with one in-band `overloaded` error line and closed;
//! * the shared bounded job queue — a connection reading requests faster
//!   than the pool drains blocks in dispatch;
//! * [`NetOptions::pipeline_window`] — per connection, at most this many
//!   responses may be in flight (dispatched but unwritten); a client
//!   that never reads its socket stalls only itself.
//!
//! Oversized request lines ([`NetOptions::max_line_bytes`]) and invalid
//! UTF-8 are answered in-band and the connection is closed. A connection
//! idle longer than [`NetOptions::idle_timeout`] is closed; the same
//! duration bounds blocked writes to a never-reading peer.
//!
//! # Shutdown
//!
//! Graceful shutdown is triggered by the wire `{"op": "shutdown"}` admin
//! op on any connection, or programmatically via [`NetHandle::shutdown`]
//! (the hook a signal handler would call; plain `rankfair serve-net` has
//! no signal runtime, so Ctrl-C is an immediate OS kill). Either way:
//! listeners stop accepting, every connection stops reading, in-flight
//! jobs drain, responses flush, sockets close, and [`serve_net`]
//! returns.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::session::{Executor, Gate, LineOutcome, Session};
use crate::AuditService;
use rankfair_json::Value;

/// How often blocked accepts and reads wake up to check the shutdown
/// flag and the idle clock.
const POLL: Duration = Duration::from_millis(100);

/// Options for [`serve_net`].
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Worker threads shared by every connection (min 1).
    pub workers: usize,
    /// Zero out `wall_ms` and `stats.elapsed_ms` so responses are
    /// byte-deterministic.
    pub strip_timing: bool,
    /// Concurrent connections accepted across all listeners; excess
    /// connections get one in-band `overloaded` error line and are
    /// closed.
    pub max_connections: usize,
    /// Per-connection pipeline window: how many responses may be past
    /// dispatch but unwritten before the connection's reader blocks.
    pub pipeline_window: usize,
    /// Longest accepted request line in bytes; longer lines are answered
    /// in-band and the connection is closed.
    pub max_line_bytes: usize,
    /// Close a connection with no complete request line for this long;
    /// also bounds a blocked write to a peer that never reads.
    pub idle_timeout: Duration,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            workers: 4,
            strip_timing: false,
            max_connections: 256,
            pipeline_window: 64,
            max_line_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// What a [`serve_net`] run did, summed over every connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetSummary {
    /// Connections accepted and served.
    pub connections: usize,
    /// Connections turned away at the [`NetOptions::max_connections`]
    /// cap.
    pub rejected: usize,
    /// Request lines answered.
    pub requests: usize,
    /// How many of them answered `"ok": false`.
    pub errors: usize,
}

/// One bound listening socket.
enum Bound {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener and the socket path to unlink on drop.
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Bound {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Bound::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Bound::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    fn local_addr(&self) -> String {
        match self {
            Bound::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:?".to_string(),
            },
            #[cfg(unix)]
            Bound::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }
}

impl Drop for Bound {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Bound::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection stream.
enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_blocking(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(false),
        }
    }

    /// Disable Nagle on TCP: responses are single buffered writes, and
    /// letting the kernel hold them for a delayed ACK adds tens of
    /// milliseconds to every pipelined round trip. No-op on Unix
    /// sockets.
    fn set_nodelay(&self) {
        if let Conn::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }

    fn set_read_timeout(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(t)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(t)),
        }
    }

    fn set_write_timeout(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(Some(t)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(Some(t)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The bound listeners a [`serve_net`] run accepts on. Bind first, then
/// serve — so callers (and tests) can bind port 0 and read the kernel's
/// choice from [`NetListeners::local_addrs`] before any traffic flows.
pub struct NetListeners {
    bounds: Vec<Bound>,
    shutdown: Arc<AtomicBool>,
}

impl NetListeners {
    /// Binds every address in `addrs`. Accepted forms: `tcp:host:port`,
    /// bare `host:port` (TCP), and `unix:/path/to.sock` (Unix systems
    /// only; a stale socket file left by a dead server is unlinked
    /// first). Listeners are nonblocking — the accept loops poll them.
    pub fn bind(addrs: &[String]) -> io::Result<NetListeners> {
        let mut bounds = Vec::new();
        for spec in addrs {
            bounds.push(bind_one(spec)?);
        }
        if bounds.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listen addresses given",
            ));
        }
        Ok(NetListeners {
            bounds,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound addresses, `tcp:`/`unix:`-prefixed — with port 0 these
    /// carry the kernel-assigned port.
    pub fn local_addrs(&self) -> Vec<String> {
        self.bounds.iter().map(Bound::local_addr).collect()
    }

    /// A handle that can trigger graceful shutdown from another thread
    /// (what a signal handler would call).
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }
}

/// Remote control for a running [`serve_net`]: the programmatic
/// equivalent of the wire `{"op": "shutdown"}` admin op.
#[derive(Clone)]
pub struct NetHandle {
    shutdown: Arc<AtomicBool>,
}

impl NetHandle {
    /// Begin graceful shutdown: stop accepting, drain in-flight jobs,
    /// flush responses, close connections. [`serve_net`] returns once
    /// the drain completes.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

fn bind_one(spec: &str) -> io::Result<Bound> {
    if let Some(path) = spec.strip_prefix("unix:") {
        return bind_unix(path);
    }
    let addr = spec.strip_prefix("tcp:").unwrap_or(spec);
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    Ok(Bound::Tcp(listener))
}

#[cfg(unix)]
fn bind_unix(path: &str) -> io::Result<Bound> {
    use std::os::unix::fs::FileTypeExt;
    let path = PathBuf::from(path);
    // A stale socket file from a dead server would fail the bind with
    // AddrInUse; unlink it — but only if it really is a socket, never an
    // unrelated file that happens to share the name.
    if let Ok(meta) = std::fs::symlink_metadata(&path) {
        if meta.file_type().is_socket() {
            let _ = std::fs::remove_file(&path);
        }
    }
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    Ok(Bound::Unix(listener, path))
}

#[cfg(not(unix))]
fn bind_unix(_path: &str) -> io::Result<Bound> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "unix: listeners are not supported on this platform",
    ))
}

/// Counts live connections against the cap and lets the shutdown path
/// wait for all of them to finish draining.
#[derive(Default)]
struct ConnTracker {
    live: Mutex<usize>,
    changed: Condvar,
}

impl ConnTracker {
    fn try_acquire(&self, cap: usize) -> bool {
        let mut live = self.live.lock().expect("conn tracker lock");
        if *live >= cap {
            return false;
        }
        *live += 1;
        true
    }

    fn release(&self) {
        let mut live = self.live.lock().expect("conn tracker lock");
        *live = live.saturating_sub(1);
        drop(live);
        self.changed.notify_all();
    }

    fn wait_zero(&self) {
        let mut live = self.live.lock().expect("conn tracker lock");
        while *live > 0 {
            live = self.changed.wait(live).expect("conn tracker lock"); // lint:allow(panic-path) -- Condvar::wait only fails on mutex poison, i.e. a connection thread already panicked; propagates an existing panic rather than creating a path
        }
    }
}

/// Run totals summed across connections (each connection folds its
/// session summary in as it closes).
#[derive(Default)]
struct Totals {
    connections: AtomicUsize,
    rejected: AtomicUsize,
    requests: AtomicUsize,
    errors: AtomicUsize,
}

impl Totals {
    fn summary(&self) -> NetSummary {
        NetSummary {
            connections: self.connections.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// Everything an accept loop or connection thread needs, by reference —
/// all of it outlives the thread scope.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    exec: &'a Executor,
    service: &'a AuditService,
    opts: &'a NetOptions,
    shutdown: &'a AtomicBool,
    live: &'a ConnTracker,
    totals: &'a Totals,
}

/// Accepts connections on `listeners` and serves each as a pipelined
/// JSONL session against `service` until graceful shutdown (the wire
/// `shutdown` op on any connection, or [`NetHandle::shutdown`]).
///
/// Per-connection I/O failures close that connection only; this function
/// itself does not fail — bind errors are surfaced earlier by
/// [`NetListeners::bind`].
pub fn serve_net(service: &AuditService, listeners: NetListeners, opts: &NetOptions) -> NetSummary {
    let NetListeners { bounds, shutdown } = listeners;
    // Declared before the scope so every scoped thread can borrow them.
    let exec = Executor::new(opts.workers, opts.strip_timing);
    let live = ConnTracker::default();
    let totals = Totals::default();
    std::thread::scope(|scope| {
        exec.start_workers(scope, service);
        let ctx = Ctx {
            exec: &exec,
            service,
            opts,
            shutdown: &shutdown,
            live: &live,
            totals: &totals,
        };
        let accepts: Vec<_> = bounds
            .iter()
            .map(|bound| scope.spawn(move || accept_loop(scope, ctx, bound)))
            .collect();
        for h in accepts {
            let _ = h.join();
        }
        // Accept loops are done (shutdown flag set); connections notice
        // the flag at their next poll point, drain, and release.
        live.wait_zero();
        // No session can dispatch anymore: let the workers exit so the
        // scope can join.
        exec.close();
    });
    totals.summary()
}

fn accept_loop<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: Ctx<'scope>,
    bound: &'scope Bound,
) {
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match bound.accept() {
            Ok(conn) => {
                if !ctx.live.try_acquire(ctx.opts.max_connections) {
                    ctx.totals.rejected.fetch_add(1, Ordering::Relaxed);
                    reject_overloaded(conn);
                    continue;
                }
                ctx.totals.connections.fetch_add(1, Ordering::Relaxed);
                scope.spawn(move || {
                    handle_connection(scope, ctx, conn);
                    ctx.live.release();
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Transient accept failure (e.g. out of descriptors):
                // back off rather than spin or die.
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Answers an over-the-cap connection with one in-band error line, then
/// drops it. The write is best-effort and time-bounded so a peer that
/// never reads cannot wedge the accept loop.
fn reject_overloaded(mut conn: Conn) {
    let _ = conn.set_blocking();
    let _ = conn.set_write_timeout(Duration::from_secs(1));
    let line = Value::object([
        ("ok", Value::from(false)),
        (
            "error",
            Value::object([
                ("kind", Value::from("overloaded")),
                (
                    "message",
                    Value::from("connection limit reached; retry later"),
                ),
            ]),
        ),
    ])
    .render();
    let _ = writeln!(conn, "{line}");
    let _ = conn.flush();
}

/// Why the read half of a connection stopped.
enum ReadEnd {
    /// EOF, error, timeout, fatal framing violation, or server shutdown.
    Closed,
    /// The peer sent the `shutdown` admin op.
    ShutdownRequested,
}

fn handle_connection<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: Ctx<'scope>,
    mut conn: Conn,
) {
    // Accepted sockets may inherit the listener's nonblocking mode on
    // some platforms; read timeouts need blocking mode.
    if conn.set_blocking().is_err() {
        return;
    }
    conn.set_nodelay();
    // Reads wake at POLL to check shutdown/idle; writes to a peer that
    // never reads give up after the idle timeout.
    if conn
        .set_read_timeout(ctx.opts.idle_timeout.min(POLL))
        .is_err()
    {
        return;
    }
    let _ = conn.set_write_timeout(ctx.opts.idle_timeout);
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let (res_tx, res_rx) = mpsc::channel();
    let dead = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(Gate::new(ctx.opts.pipeline_window));
    let writer = scope.spawn({
        let gate = Arc::clone(&gate);
        let dead = Arc::clone(&dead);
        // Buffered so each response line reaches the kernel as one
        // write; write_responses flushes per line.
        move || {
            crate::session::write_responses(io::BufWriter::new(write_half), &res_rx, &gate, &dead)
        }
    });
    let mut session = Session::new(
        ctx.exec,
        ctx.service,
        res_tx,
        Arc::clone(&dead),
        Arc::clone(&gate),
    );
    let end = read_loop(ctx, &mut conn, &mut session);
    // Drop the session: its response sender goes away, so once the
    // in-flight jobs complete the writer drains the reorder buffer and
    // returns — that is the per-connection flush point.
    drop(session);
    if let Ok(Ok(summary)) = writer.join() {
        ctx.totals
            .requests
            .fetch_add(summary.requests, Ordering::Relaxed);
        ctx.totals
            .errors
            .fetch_add(summary.errors, Ordering::Relaxed);
    }
    if matches!(end, ReadEnd::ShutdownRequested) {
        // Flip the global flag only after this connection's drain, so
        // the shutdown acknowledgement itself is flushed.
        ctx.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Reads and dispatches request lines until EOF, error, idle timeout,
/// framing violation, server shutdown, or a `shutdown` op.
///
/// Framing is manual (not `BufRead::lines`): reads time out at poll
/// points, and a timeout mid-line must not discard the partial line the
/// way a buffered reader would.
fn read_loop(ctx: Ctx<'_>, conn: &mut Conn, session: &mut Session<'_>) -> ReadEnd {
    let mut acc: VecDeque<u8> = VecDeque::new();
    let mut buf = [0u8; 8192];
    let mut last_activity = Instant::now();
    loop {
        if ctx.shutdown.load(Ordering::Relaxed) || session.dead() {
            return ReadEnd::Closed;
        }
        match conn.read(&mut buf) {
            Ok(0) => return ReadEnd::Closed,
            Ok(n) => {
                last_activity = Instant::now();
                let Some(chunk) = buf.get(..n) else {
                    return ReadEnd::Closed;
                };
                acc.extend(chunk.iter().copied());
                while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                    let mut line: Vec<u8> = acc.drain(..=pos).collect();
                    line.pop(); // the newline
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if line.len() > ctx.opts.max_line_bytes {
                        session.dispatch_error(format!(
                            "request line exceeds {} bytes",
                            ctx.opts.max_line_bytes
                        ));
                        return ReadEnd::Closed;
                    }
                    let Ok(text) = String::from_utf8(line) else {
                        session.dispatch_error("request line is not valid UTF-8".to_string());
                        return ReadEnd::Closed;
                    };
                    if text.trim().is_empty() {
                        continue;
                    }
                    if session.dispatch_line(&text) == LineOutcome::Shutdown {
                        return ReadEnd::ShutdownRequested;
                    }
                    if ctx.shutdown.load(Ordering::Relaxed) || session.dead() {
                        return ReadEnd::Closed;
                    }
                }
                // A partial line larger than the cap can never become a
                // valid request: answer and close rather than buffer an
                // unbounded stream of garbage.
                if acc.len() > ctx.opts.max_line_bytes {
                    session.dispatch_error(format!(
                        "request line exceeds {} bytes",
                        ctx.opts.max_line_bytes
                    ));
                    return ReadEnd::Closed;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= ctx.opts.idle_timeout {
                    return ReadEnd::Closed;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadEnd::Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankfair_data::examples::students_fig1;
    use std::io::{BufRead, BufReader};

    fn fig1_service() -> AuditService {
        let service = AuditService::new();
        service.register_dataset("fig1", Arc::new(students_fig1()));
        service
    }

    fn audit_line(id: usize) -> String {
        format!(
            concat!(
                r#"{{"id": {}, "dataset": "fig1", "ranking": {{"rank_by": "Grade"}}, "#,
                r#""task": {{"type": "under", "measure": {{"type": "global", "lower": 2}}}}, "#,
                r#""config": {{"tau": 4, "kmin": 4, "kmax": 5}}}}"#
            ),
            id
        )
    }

    fn opts() -> NetOptions {
        NetOptions {
            workers: 4,
            strip_timing: true,
            idle_timeout: Duration::from_secs(30),
            ..NetOptions::default()
        }
    }

    /// Binds a loopback listener, runs `serve_net` on a scoped thread,
    /// and hands the client half to `client`; returns the run summary.
    fn with_server<T: Send>(
        opts: NetOptions,
        client: impl FnOnce(&str, NetHandle) -> T + Send,
    ) -> (NetSummary, T) {
        let service = fig1_service();
        let listeners = NetListeners::bind(&["tcp:127.0.0.1:0".to_string()]).unwrap();
        let addr = listeners.local_addrs().remove(0);
        let addr = addr.strip_prefix("tcp:").unwrap().to_string();
        let handle = listeners.handle();
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_net(&service, listeners, &opts));
            let out = client(&addr, handle.clone());
            handle.shutdown();
            (server.join().unwrap(), out)
        })
    }

    #[test]
    fn pipelined_tcp_session_answers_in_order_and_shuts_down() {
        let (summary, lines) = with_server(opts(), |addr, _| {
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut batch = String::new();
            for i in 0..8 {
                batch.push_str(&audit_line(i));
                batch.push('\n');
            }
            batch.push_str("{\"id\": 8, \"op\": \"shutdown\"}\n");
            // One write: the whole pipeline in flight at once.
            conn.write_all(batch.as_bytes()).unwrap();
            let reader = BufReader::new(conn);
            let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
            lines
        });
        assert_eq!(lines.len(), 9);
        for (i, line) in lines.iter().take(8).enumerate() {
            assert!(
                line.starts_with(&format!(r#"{{"id":{i},"ok":true"#)),
                "{line}"
            );
        }
        assert_eq!(lines[8], r#"{"id":8,"ok":true,"op":"shutdown"}"#);
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.requests, 9);
        assert_eq!(summary.errors, 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trips_and_unlinks_on_drop() {
        let path =
            std::env::temp_dir().join(format!("rankfair_net_test_{}.sock", std::process::id()));
        let spec = format!("unix:{}", path.display());
        let service = fig1_service();
        let listeners = NetListeners::bind(&[spec]).unwrap();
        let handle = listeners.handle();
        let summary = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_net(&service, listeners, &opts()));
            let mut conn = UnixStream::connect(&path).unwrap();
            conn.write_all((audit_line(0) + "\n").as_bytes()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with(r#"{"id":0,"ok":true"#), "{line}");
            handle.shutdown();
            server.join().unwrap()
        });
        assert_eq!(summary.connections, 1);
        assert!(!path.exists(), "socket file unlinked on drop");
    }

    #[test]
    fn over_cap_connections_get_in_band_overloaded_error() {
        let opts = NetOptions {
            max_connections: 1,
            ..opts()
        };
        let (summary, rejected_line) = with_server(opts, |addr, _| {
            // First connection holds the only slot (it never sends, the
            // server is just waiting on it).
            let held = TcpStream::connect(addr).unwrap();
            let second = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(second);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            drop(held);
            line
        });
        assert!(
            rejected_line.contains(r#""kind":"overloaded""#),
            "{rejected_line}"
        );
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn oversized_line_is_answered_in_band_and_closes() {
        let opts = NetOptions {
            max_line_bytes: 256,
            ..opts()
        };
        let (_, (err_line, eof)) = with_server(opts, |addr, _| {
            let mut conn = TcpStream::connect(addr).unwrap();
            let huge = "x".repeat(1024);
            conn.write_all((huge + "\n").as_bytes()).unwrap();
            let mut reader = BufReader::new(conn);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut rest = String::new();
            let eof = reader.read_line(&mut rest).unwrap() == 0;
            (line, eof)
        });
        assert!(err_line.contains(r#""kind":"bad_request""#), "{err_line}");
        assert!(err_line.contains("exceeds 256 bytes"), "{err_line}");
        assert!(eof, "connection closed after the framing violation");
    }
}
