//! The CLI subcommands, built directly on the library crates: every
//! detection path goes through the owned [`Audit`] API, so the CLI
//! exercises exactly what a server embedding the library would.

use std::sync::Arc;

use rankfair_core::{
    render_report, render_report_csv, Audit, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine,
    MonitorAudit, OverRepScope,
};
use rankfair_data::csv::{read_csv, CsvOptions};
use rankfair_data::Dataset;
use rankfair_divergence::{display_items, divergent_subgroups, DivergenceConfig};
use rankfair_explain::{ExplainConfig, ForestParams, RankSurrogate};
use rankfair_rank::{AttributeRanker, Ranker, Ranking, SortKey};
use rankfair_service::net::{NetListeners, NetOptions};
use rankfair_service::serve::ServeOptions;
use rankfair_service::AuditService;

use crate::args::{parse_bucketize, parse_group, Flags};

/// A command failure, classified so `main` can map it to the right exit
/// code: **usage** errors (bad flags/values — the invocation itself is
/// wrong, exit 2) vs. **runtime** failures (missing files, data-dependent
/// errors, failed runs — exit 1). Scripts driving the CLI rely on the
/// distinction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation is malformed; rerunning it will never work.
    Usage(String),
    /// The invocation is well-formed but failed against this environment
    /// or data.
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) | CliError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

// Flag parsing/validation helpers all yield Strings describing a bad
// invocation; let `?` classify them as usage errors. Runtime failures are
// wrapped explicitly via `rt`.
impl From<String> for CliError {
    fn from(e: String) -> Self {
        CliError::Usage(e)
    }
}

fn rt(e: impl ToString) -> CliError {
    CliError::Runtime(e.to_string())
}

/// Loads the CSV and computes the ranking on the raw data — the shared
/// front half of every subcommand.
fn load(flags: &Flags) -> Result<(Arc<Dataset>, Ranking), CliError> {
    let path = flags.require("csv")?;
    let sep = flags
        .get("sep")
        .map(|s| s.chars().next().unwrap_or(','))
        .unwrap_or(',');
    let opts = CsvOptions {
        separator: sep,
        ..CsvOptions::default()
    };
    let raw = read_csv(path, &opts).map_err(|e| rt(format!("reading {path}: {e}")))?;

    let rank_col = flags.require("rank-by")?;
    if raw.column_index(rank_col).is_none() {
        return Err(rt(format!("--rank-by: no column named `{rank_col}`")));
    }
    let key = if flags.switch("asc") {
        SortKey::asc(rank_col)
    } else {
        SortKey::desc(rank_col)
    };
    let ranking = AttributeRanker::new(vec![key]).rank(&raw);
    Ok((Arc::new(raw), ranking))
}

/// Builds the audit: bucketization (as builder hooks on a private copy),
/// attribute restriction, and worker threads all come from flags.
fn build_audit(raw: &Arc<Dataset>, ranking: &Ranking, flags: &Flags) -> Result<Audit, CliError> {
    let mut builder = Audit::builder(Arc::clone(raw)).ranking(ranking.clone());
    if let Some(spec) = flags.get("bucketize") {
        for (col, bins) in parse_bucketize(spec)? {
            builder = builder.bucketize(&col, bins);
        }
    }
    if let Some(attrs) = flags.list("attrs") {
        builder = builder.attributes(attrs);
    }
    builder = builder.threads(flags.num("threads", 1)?);
    // `--shards` is only in the detect flag spec; the other commands fall
    // through to the default monolithic index.
    builder = builder.shards(flags.num("shards", 1)?);
    // Build failures are data-dependent (unknown attribute columns, failed
    // bucketization hooks): runtime, not usage.
    builder.build().map_err(rt)
}

fn parse_engine(flags: &Flags) -> Result<Engine, String> {
    if flags.switch("baseline") {
        // The deprecated alias must not silently override an explicit,
        // contradictory --engine choice.
        if flags.get("engine") == Some("optimized") {
            return Err("--baseline contradicts --engine optimized".to_string());
        }
        return Ok(Engine::Baseline);
    }
    match flags.get("engine").unwrap_or("optimized") {
        "optimized" => Ok(Engine::Optimized),
        "baseline" => Ok(Engine::Baseline),
        other => Err(format!(
            "--engine must be optimized or baseline, got `{other}`"
        )),
    }
}

fn parse_task(flags: &Flags) -> Result<AuditTask, String> {
    let lower = || -> Result<Bounds, String> { Ok(Bounds::constant(flags.num("lower", 10)?)) };
    let upper = || -> Result<Bounds, String> { Ok(Bounds::constant(flags.num("upper", 20)?)) };
    let scope = || -> Result<OverRepScope, String> {
        match flags.get("scope").unwrap_or("specific") {
            "specific" => Ok(OverRepScope::MostSpecific),
            "general" => Ok(OverRepScope::MostGeneral),
            other => Err(format!(
                "--scope must be specific or general, got `{other}`"
            )),
        }
    };
    let task = flags.get("task").unwrap_or("under");
    // Reject flags the chosen task would silently ignore: a dropped
    // measure changes the result set without any diagnostic.
    let reject = |flag: &str| -> Result<(), String> {
        if flags.get(flag).is_some() {
            return Err(format!("--{flag} does not apply to --task {task}"));
        }
        Ok(())
    };
    match task {
        "under" => {
            reject("upper")?;
            reject("scope")?;
            let measure = match flags.get("problem").unwrap_or("global") {
                "global" => {
                    reject("alpha")?;
                    BiasMeasure::GlobalLower(lower()?)
                }
                "prop" | "proportional" => {
                    reject("lower")?;
                    BiasMeasure::Proportional {
                        alpha: flags.num("alpha", 0.8)?,
                    }
                }
                other => return Err(format!("--problem must be global or prop, got `{other}`")),
            };
            Ok(AuditTask::UnderRep(measure))
        }
        "over" => {
            reject("problem")?;
            reject("alpha")?;
            reject("lower")?;
            Ok(AuditTask::OverRep {
                upper: upper()?,
                scope: scope()?,
            })
        }
        "combined" => {
            reject("problem")?;
            reject("alpha")?;
            reject("scope")?;
            Ok(AuditTask::Combined {
                lower: lower()?,
                upper: upper()?,
            })
        }
        other => Err(format!(
            "--task must be under, over or combined, got `{other}`"
        )),
    }
}

/// Parses `--tau/--kmin/--kmax` and validates the range: a malformed
/// range is a usage error, a well-formed one too large for *this*
/// dataset a runtime failure (the exit-code split scripts rely on).
fn parse_detect_config(flags: &Flags, n_rows: usize) -> Result<DetectConfig, CliError> {
    let tau: usize = flags.num("tau", 50)?;
    let k_min: usize = flags.num("kmin", 10)?;
    let k_max: usize = flags.num("kmax", 49)?;
    if k_min == 0 || k_min > k_max {
        return Err(CliError::Usage(format!(
            "invalid k range [{k_min}, {k_max}]"
        )));
    }
    if k_max > n_rows {
        return Err(rt(format!(
            "invalid k range [{k_min}, {k_max}] for {n_rows} rows"
        )));
    }
    Ok(DetectConfig::new(tau, k_min, k_max))
}

/// Keeps at most `top` groups per `k` **per direction**: the under block
/// precedes the over block, and a global cap would silently swallow
/// every over group.
fn truncate_reports(reports: &mut [rankfair_core::KReport], top: usize) {
    for r in reports {
        let mut under_seen = 0usize;
        let mut over_seen = 0usize;
        r.groups.retain(|g| {
            let seen = match g.direction {
                rankfair_core::BiasDirection::Under => &mut under_seen,
                rankfair_core::BiasDirection::Over => &mut over_seen,
            };
            *seen += 1;
            *seen <= top
        });
    }
}

/// `rankfair detect`.
pub fn detect(flags: &Flags) -> Result<(), CliError> {
    let (raw, ranking) = load(flags)?;
    let audit = build_audit(&raw, &ranking, flags)?;
    let mut cfg = parse_detect_config(flags, audit.dataset().n_rows())?;
    if let Some(secs) = flags.get("deadline") {
        let parsed: f64 = secs
            .parse()
            .map_err(|_| format!("--deadline must be a number of seconds, got `{secs}`"))?;
        // try_from_secs_f64 rejects NaN, negatives, and values past
        // u64::MAX seconds — from_secs_f64 would panic on the latter.
        let d = std::time::Duration::try_from_secs_f64(parsed).map_err(|_| {
            format!("--deadline must be a representable number of seconds (non-negative, below u64::MAX), got {secs}")
        })?;
        cfg = cfg.with_deadline(d);
    }
    let task = parse_task(flags)?;
    let engine = parse_engine(flags)?;
    // Validate the remaining output flags *before* the (possibly long)
    // run: a pure usage error must not cost minutes of computation first.
    let format = flags.get("format").unwrap_or("table");
    if !matches!(format, "table" | "csv" | "json") {
        return Err(CliError::Usage(format!(
            "--format must be table, csv or json, got `{format}`"
        )));
    }
    let top: usize = flags.num("top", 20)?;

    let out = audit.run(&cfg, &task, engine).map_err(rt)?;
    let mut reports = audit.report(&out, &task);
    truncate_reports(&mut reports, top);
    match format {
        "table" => print!("{}", render_report(&reports)),
        "csv" => print!("{}", render_report_csv(&reports)),
        "json" => {
            use rankfair_json::{ToJson, Value};
            let v = Value::object([
                (
                    "per_k",
                    rankfair_core::json::reports_json(&reports, audit.space()),
                ),
                ("stats", out.stats.to_json()),
            ]);
            println!("{v}");
        }
        _ => unreachable!("format validated before the run"),
    }
    eprintln!(
        "[{} groups over {} k values; {} patterns examined in {:.1?}; {} thread(s){}{}]",
        out.total_groups(),
        out.per_k.len(),
        out.stats.patterns_examined(),
        out.stats.elapsed,
        audit.threads(),
        match audit.index().shard_count() {
            0 | 1 => String::new(),
            s => format!(", {s} shards"),
        },
        if out.stats.timed_out {
            "; TIMED OUT — results truncated"
        } else {
            ""
        },
    );
    Ok(())
}

/// `rankfair explain`.
pub fn explain(flags: &Flags) -> Result<(), CliError> {
    let (raw, ranking) = load(flags)?;
    let audit = build_audit(&raw, &ranking, flags)?;
    let pairs = parse_group(flags.require("group")?)?;
    let refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(a, v)| (a.as_str(), v.as_str()))
        .collect();
    let pattern = audit
        .space()
        .pattern(&refs)
        .ok_or_else(|| rt("unknown attribute or value in --group"))?;
    let members = audit.group_members(&pattern);
    if members.is_empty() {
        return Err(rt("the group matches no tuples"));
    }
    let k: usize = flags.num("k", 49.min(raw.n_rows()))?;
    let (sd, count) = audit.index().counts(&pattern, k);
    println!(
        "group {} — s_D = {sd}, top-{k} = {count}",
        audit.describe(&pattern)
    );

    let config = ExplainConfig {
        forest: ForestParams {
            n_trees: flags.num("trees", 30)?,
            ..ForestParams::default()
        },
        shapley_samples: flags.num("samples", 48)?,
        ..ExplainConfig::default()
    };
    let surrogate = RankSurrogate::fit(&raw, &ranking, &config);
    println!("surrogate in-sample R² = {:.3}\n", surrogate.fit_quality());
    let ex = surrogate.explain_group(&members);
    println!("aggregated Shapley values (top 6 attributes):");
    print!("{}", ex.render(6));

    let top_attr = ex.ranked_attributes()[0].0.clone();
    let topk: Vec<u32> = ranking.top_k(k).to_vec();
    let cmp =
        rankfair_explain::distribution::compare_distributions(&raw, &top_attr, &topk, &members);
    println!("\nvalue distribution of `{top_attr}`:");
    print!("{}", cmp.render());
    Ok(())
}

/// `rankfair compare`.
pub fn compare(flags: &Flags) -> Result<(), CliError> {
    let (raw, ranking) = load(flags)?;
    let audit = build_audit(&raw, &ranking, flags)?;
    let k: usize = flags.num("k", 10)?;
    let tau: usize = flags.num("tau", 50)?;
    let cfg = DetectConfig::new(tau, k, k);

    let global_task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(
        flags.num("lower", 10)?,
    )));
    let prop_task = AuditTask::UnderRep(BiasMeasure::Proportional {
        alpha: flags.num("alpha", 0.8)?,
    });
    let global = audit
        .run(&cfg, &global_task, Engine::Optimized)
        .map_err(rt)?;
    let prop = audit.run(&cfg, &prop_task, Engine::Optimized).map_err(rt)?;
    println!("GlobalBounds ({} groups):", global.per_k[0].under.len());
    for p in &global.per_k[0].under {
        println!("  {}", audit.describe(p));
    }
    println!("\nPropBounds ({} groups):", prop.per_k[0].under.len());
    for p in &prop.per_k[0].under {
        println!("  {}", audit.describe(p));
    }

    let support: f64 = flags.num("support", 0.13)?;
    let detection = audit.dataset();
    let cols = flags.list("attrs").map(|attrs| {
        attrs
            .iter()
            .filter_map(|a| detection.column_index(a))
            .collect::<Vec<_>>()
    });
    let div = divergent_subgroups(
        detection,
        &ranking,
        k,
        &DivergenceConfig {
            min_support: support,
            max_len: 0,
            columns: cols,
        },
    );
    println!(
        "\nDivergence baseline ({} subgroups, five most negative):",
        div.len()
    );
    for s in div.iter().take(5) {
        println!(
            "  {:50} support {:>5}  divergence {:+.3}",
            display_items(detection, &s.items),
            s.support,
            s.divergence
        );
    }
    Ok(())
}

/// `rankfair demo` — the Figure 1 running example, both directions.
pub fn demo() -> Result<(), CliError> {
    let ds = Arc::new(rankfair_data::examples::students_fig1());
    let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
    let audit = Audit::builder(ds).ranker(&ranker).build().map_err(rt)?;
    println!("Figure 1 running example: 16 students, ranking by grade then failures.\n");

    let cfg = DetectConfig::new(4, 4, 5);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(2)));
    let out = audit.run(&cfg, &task, Engine::Optimized).map_err(rt)?;
    println!("Global bounds (τs = 4, L = 2):");
    print!("{}", render_report(&audit.report(&out, &task)));

    let cfg = DetectConfig::new(5, 4, 5);
    let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.9 });
    let out = audit.run(&cfg, &task, Engine::Optimized).map_err(rt)?;
    println!("\nProportional (τs = 5, α = 0.9):");
    print!("{}", render_report(&audit.report(&out, &task)));

    let cfg = DetectConfig::new(4, 5, 5);
    let task = AuditTask::Combined {
        lower: Bounds::constant(2),
        upper: Bounds::constant(2),
    };
    let out = audit.run(&cfg, &task, Engine::Optimized).map_err(rt)?;
    println!("\nCombined lower + upper bounds (τs = 4, L = 2, U = 2):");
    print!("{}", render_report(&audit.report(&out, &task)));
    Ok(())
}

/// `rankfair monitor` — build a live monitor over a CSV and replay a
/// JSONL edit log against it, one delta re-audit per log line.
pub fn monitor(flags: &Flags) -> Result<(), CliError> {
    let path = flags.require("csv")?;
    let sep = flags
        .get("sep")
        .map(|s| s.chars().next().unwrap_or(','))
        .unwrap_or(',');
    let opts = CsvOptions {
        separator: sep,
        ..CsvOptions::default()
    };
    let ds = read_csv(path, &opts).map_err(|e| rt(format!("reading {path}: {e}")))?;
    let rank_col = flags.require("rank-by")?;
    let edits_path = flags.require("edits")?;
    let cfg = parse_detect_config(flags, ds.n_rows())?;
    let task = parse_task(flags)?;
    let engine = parse_engine(flags)?;
    let format = flags.get("format").unwrap_or("table");
    if !matches!(format, "table" | "json") {
        return Err(CliError::Usage(format!(
            "--format must be table or json, got `{format}`"
        )));
    }
    let top: usize = flags.num("top", 20)?;
    let cadence: usize = flags.num("checkpoint-every", MonitorAudit::DEFAULT_CHECKPOINT_CADENCE)?;
    if cadence == 0 {
        return Err(CliError::Usage(
            "--checkpoint-every must be at least 1".into(),
        ));
    }

    let mut builder = MonitorAudit::builder(ds, rank_col)
        .ascending(flags.switch("asc"))
        .checkpoint_every(cadence);
    if let Some(attrs) = flags.list("attrs") {
        builder = builder.attributes(attrs);
    }
    let mut monitor = builder.build(cfg.clone(), task, engine).map_err(rt)?;
    eprintln!(
        "[monitor over {} rows, ranked by `{rank_col}`; k in [{}, {}], τs = {}]",
        monitor.n_rows(),
        cfg.k_min,
        cfg.k_max,
        cfg.tau_s,
    );

    let log = std::fs::read_to_string(edits_path)
        .map_err(|e| rt(format!("reading {edits_path}: {e}")))?;
    let mut batches = 0usize;
    let mut edits_total = 0usize;
    let mut changes_total = 0usize;
    for (lineno, line) in log.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: &dyn std::fmt::Display| rt(format!("edit log line {}: {e}", lineno + 1));
        let v = rankfair_json::parse(line).map_err(|e| at(&e))?;
        let batch = match v.get("edits") {
            Some(arr) => {
                if let Some(pairs) = v.as_obj() {
                    if let Some((key, _)) = pairs.iter().find(|(k, _)| k != "edits") {
                        return Err(at(&format!("unknown member `{key}` in edit batch")));
                    }
                }
                rankfair_core::json::edits_from_json(arr, monitor.dataset())
            }
            None => rankfair_core::json::edit_from_json(&v, monitor.dataset()).map(|e| vec![e]),
        }
        .map_err(|e| at(&e))?;
        let delta = monitor.apply(&batch).map_err(|e| at(&e))?;
        batches += 1;
        edits_total += delta.edits;
        changes_total += delta.total_changes();
        match format {
            "json" => println!(
                "{}",
                rankfair_core::json::delta_report_json(&delta, monitor.space(), false).render()
            ),
            _ => {
                let span = match delta.recomputed {
                    Some((lo, hi)) => format!("re-audited k in [{lo}, {hi}]"),
                    None => "no top-k set changed".to_string(),
                };
                println!(
                    "[batch {batches}] {} edit(s); {span}; {} membership change(s)",
                    delta.edits,
                    delta.total_changes()
                );
                for kd in &delta.changed {
                    let mut parts: Vec<String> = Vec::new();
                    for (list, tag, sign) in [
                        (&kd.entered_under, "under", '+'),
                        (&kd.left_under, "under", '-'),
                        (&kd.entered_over, "over", '+'),
                        (&kd.left_over, "over", '-'),
                    ] {
                        for p in list {
                            parts.push(format!("{sign}{} ({tag})", monitor.describe(p)));
                        }
                    }
                    println!("  k={:<4} {}", kd.k, parts.join("  "));
                }
            }
        }
    }

    // Final state: the same report shape `detect` prints.
    let mut reports = monitor.reports();
    truncate_reports(&mut reports, top);
    match format {
        "json" => {
            use rankfair_json::Value;
            let v = Value::object([
                ("rows", Value::from(monitor.n_rows())),
                (
                    "per_k",
                    rankfair_core::json::reports_json(&reports, monitor.space()),
                ),
            ]);
            println!("{v}");
        }
        _ => {
            println!("\nFinal audit state after the edit log:");
            print!("{}", render_report(&reports));
        }
    }
    eprintln!(
        "[replayed {batches} batch(es), {edits_total} edit(s); {changes_total} membership change(s); {} rows; {} patterns examined in {:.1?}]",
        monitor.n_rows(),
        monitor.stats().patterns_examined(),
        monitor.stats().elapsed,
    );
    if let Some(ck) = monitor.checkpoint_stats() {
        eprintln!(
            "[engine checkpoints: every {} k, {}+{} live ({} snapshot nodes, {} arena nodes); {} seek(s), {} repair(s), {} cold build(s), {} replayed step(s) over {} segment(s), {} prefix recount(s), {} invalidated]",
            ck.cadence,
            ck.lower_checkpoints,
            ck.upper_checkpoints,
            ck.stored_nodes,
            ck.arena_nodes,
            ck.seeks,
            ck.repairs,
            ck.cold_builds,
            ck.replayed_steps,
            ck.segments,
            ck.prefix_recounts,
            ck.invalidated,
        );
    }
    Ok(())
}

/// `rankfair serve` — answer JSONL requests from stdin on stdout until
/// EOF, on a worker pool. See `rankfair_service::wire` for the protocol.
pub fn serve(flags: &Flags) -> Result<(), CliError> {
    let workers: usize = flags.num("workers", 1)?;
    let service = AuditService::new();
    // The Figure 1 example dataset ships preloaded so sessions (and the
    // golden-file CI check) work without any CSV on disk.
    service.register_dataset("fig1", Arc::new(rankfair_data::examples::students_fig1()));
    if let Some(specs) = flags.list("datasets") {
        for spec in specs {
            let (name, path) = spec
                .split_once('=')
                .ok_or_else(|| format!("--datasets entry `{spec}` must look like name=path"))?;
            let (rows, cols) = service.register_csv(name, path, ',').map_err(rt)?;
            eprintln!("[loaded {name} from {path}: {rows} rows, {cols} cols]");
        }
    }
    let opts = ServeOptions {
        workers,
        strip_timing: flags.switch("no-timing"),
    };
    let stdin = std::io::stdin();
    // `StdoutLock` is not `Send` (the writer runs on its own thread);
    // plain `Stdout` locks per write, which is fine for one writer.
    let summary = rankfair_service::serve::serve(&service, stdin.lock(), std::io::stdout(), &opts)
        .map_err(|e| rt(format!("serving: {e}")))?;
    eprintln!(
        "[served {} request(s), {} error(s); cache: {} audit(s), {} hit(s)/{} miss(es); {} worker(s)]",
        summary.requests,
        summary.errors,
        service.cache_len(),
        service.cache_stats().0,
        service.cache_stats().1,
        workers.max(1),
    );
    Ok(())
}

/// `rankfair serve-net` — serve the JSONL protocol over TCP and/or
/// Unix-domain sockets, one pipelined session per connection over a
/// shared worker pool, until an in-stream `{"op": "shutdown"}` drains the
/// server. See `rankfair_service::net`.
pub fn serve_net(flags: &Flags) -> Result<(), CliError> {
    let workers: usize = flags.num("workers", 4)?;
    let service = AuditService::new();
    // Same preload as `serve`: sessions work without any CSV on disk.
    service.register_dataset("fig1", Arc::new(rankfair_data::examples::students_fig1()));
    if let Some(specs) = flags.list("datasets") {
        for spec in specs {
            let (name, path) = spec
                .split_once('=')
                .ok_or_else(|| format!("--datasets entry `{spec}` must look like name=path"))?;
            let (rows, cols) = service.register_csv(name, path, ',').map_err(rt)?;
            eprintln!("[loaded {name} from {path}: {rows} rows, {cols} cols]");
        }
    }
    let listens = flags
        .list("listen")
        .unwrap_or_else(|| vec!["tcp:127.0.0.1:7878".to_string()]);
    let opts = NetOptions {
        workers,
        strip_timing: flags.switch("no-timing"),
        max_connections: flags.num("max-conns", 256)?,
        pipeline_window: flags.num("window", 64)?,
        max_line_bytes: flags.num("max-line-bytes", 1 << 20)?,
        idle_timeout: std::time::Duration::from_secs(flags.num("idle-timeout", 300)?),
    };
    let listeners = NetListeners::bind(&listens).map_err(|e| rt(format!("binding: {e}")))?;
    for addr in listeners.local_addrs() {
        eprintln!("[listening on {addr}]");
    }
    let summary = rankfair_service::net::serve_net(&service, listeners, &opts);
    eprintln!(
        "[served {} connection(s) ({} rejected at cap), {} request(s), {} error(s); cache: {} audit(s), {} hit(s)/{} miss(es); {} worker(s)]",
        summary.connections,
        summary.rejected,
        summary.requests,
        summary.errors,
        service.cache_len(),
        service.cache_stats().0,
        service.cache_stats().1,
        workers.max(1),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{parse_flags, DETECT_SPEC, EXPLAIN_SPEC};

    fn detect_flags(args: &[&str]) -> Flags {
        parse_flags(
            &args.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &DETECT_SPEC,
        )
        .unwrap()
    }

    fn explain_flags(args: &[&str]) -> Flags {
        parse_flags(
            &args.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &EXPLAIN_SPEC,
        )
        .unwrap()
    }

    fn student_csv() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rankfair_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("student.csv");
        let ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(150, 7));
        rankfair_data::csv::write_csv(&ds, &path, ',').unwrap();
        path
    }

    #[test]
    fn demo_runs() {
        demo().unwrap();
    }

    #[test]
    fn detect_runs_on_csv() {
        let path = student_csv();
        let f = detect_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--bucketize",
            "age=3,absences=4,G1=4,G2=4,G3=4",
            "--tau",
            "20",
            "--kmin",
            "5",
            "--kmax",
            "10",
            "--lower",
            "3",
        ]);
        detect(&f).unwrap();
    }

    #[test]
    fn detect_proportional_with_attr_subset() {
        let path = student_csv();
        let f = detect_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--problem",
            "prop",
            "--alpha",
            "0.8",
            "--tau",
            "20",
            "--kmin",
            "5",
            "--kmax",
            "10",
            "--attrs",
            "school,sex,address",
        ]);
        detect(&f).unwrap();
    }

    #[test]
    fn detect_over_and_combined_tasks() {
        let path = student_csv();
        for task in ["over", "combined"] {
            for engine in ["optimized", "baseline"] {
                let mut args = vec![
                    "--csv",
                    path.to_str().unwrap(),
                    "--rank-by",
                    "G3",
                    "--task",
                    task,
                    "--engine",
                    engine,
                    "--tau",
                    "20",
                    "--kmin",
                    "8",
                    "--kmax",
                    "10",
                    "--upper",
                    "5",
                    "--attrs",
                    "school,sex,address",
                ];
                if task == "combined" {
                    args.extend(["--lower", "3"]);
                }
                let f = detect_flags(&args);
                detect(&f).unwrap();
            }
        }
        // Flags the task would silently ignore are rejected instead.
        for (extra, task) in [
            (["--alpha", "0.8"], "over"),
            (["--upper", "5"], "under"),
            (["--problem", "prop"], "combined"),
        ] {
            let mut args = vec![
                "--csv",
                path.to_str().unwrap(),
                "--rank-by",
                "G3",
                "--task",
                task,
            ];
            args.extend(extra);
            let f = detect_flags(&args);
            let err = detect(&f).unwrap_err();
            assert!(err.to_string().contains("does not apply"), "{err:?}");
            assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        }
        // Most-general scope parses and runs.
        let f = detect_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--task",
            "over",
            "--scope",
            "general",
            "--tau",
            "20",
            "--kmin",
            "8",
            "--kmax",
            "9",
            "--upper",
            "4",
            "--attrs",
            "school,sex,address",
        ]);
        detect(&f).unwrap();
        // Bad task / engine / scope values are reported.
        for (flag, value, hint) in [
            ("--task", "sideways", "--task"),
            ("--engine", "quantum", "--engine"),
            ("--scope", "broad", "--scope"),
        ] {
            let mut args = vec![
                "--csv",
                path.to_str().unwrap(),
                "--rank-by",
                "G3",
                flag,
                value,
            ];
            if flag == "--scope" {
                args.extend(["--task", "over"]);
            }
            let f = detect_flags(&args);
            assert!(detect(&f).unwrap_err().to_string().contains(hint));
        }
    }

    #[test]
    fn detect_multithreaded_matches_single() {
        // The CLI output goes to stdout; here we only assert both runs
        // succeed (byte-identity is covered by the library tests).
        let path = student_csv();
        for threads in ["1", "4"] {
            let f = detect_flags(&[
                "--csv",
                path.to_str().unwrap(),
                "--rank-by",
                "G3",
                "--threads",
                threads,
                "--tau",
                "20",
                "--kmin",
                "5",
                "--kmax",
                "12",
                "--lower",
                "3",
                "--attrs",
                "school,sex,address",
            ]);
            detect(&f).unwrap();
        }
    }

    #[test]
    fn explain_runs_on_csv() {
        let path = student_csv();
        let f = explain_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--group",
            "sex=F",
            "--k",
            "20",
            "--trees",
            "8",
            "--samples",
            "8",
        ]);
        explain(&f).unwrap();
    }

    #[test]
    fn compare_runs_on_csv() {
        let path = student_csv();
        let f = parse_flags(
            &[
                "--csv",
                path.to_str().unwrap(),
                "--rank-by",
                "G3",
                "--k",
                "10",
                "--tau",
                "20",
                "--support",
                "0.13",
                "--attrs",
                "school,sex,address",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
            &crate::args::COMPARE_SPEC,
        )
        .unwrap();
        compare(&f).unwrap();
    }

    #[test]
    fn detect_csv_format() {
        let path = student_csv();
        let f = detect_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--bucketize",
            "G3=4",
            "--tau",
            "20",
            "--kmin",
            "5",
            "--kmax",
            "6",
            "--lower",
            "2",
            "--format",
            "csv",
        ]);
        detect(&f).unwrap();
        let bad = detect_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--format",
            "xml",
        ]);
        let err = detect(&bad).unwrap_err();
        assert!(err.to_string().contains("--format"));
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn monitor_replays_an_edit_log() {
        let path = student_csv();
        let dir = std::env::temp_dir().join("rankfair_cli_tests");
        let log = dir.join("edits.jsonl");
        // A score batch, an insert (cells must cover every column of the
        // synthetic student CSV — build it from the dataset itself), and
        // a no-op nudge.
        let ds = rankfair_data::csv::read_csv(&path, &rankfair_data::csv::CsvOptions::default())
            .unwrap();
        let cells: Vec<String> = ds
            .columns()
            .iter()
            .map(|c| {
                if c.is_categorical() {
                    format!("{:?}: {:?}", c.name(), c.display(0))
                } else {
                    format!("{:?}: {}", c.name(), c.value(0))
                }
            })
            .collect();
        let log_text = format!(
            "{}\n{}\n{}\n",
            r#"{"edits": [{"edit": "score", "row": 3, "score": 19.5}, {"edit": "score", "row": 7, "score": 0.5}]}"#,
            format_args!(
                "{{\"edit\": \"insert\", \"cells\": {{{}}}}}",
                cells.join(", ")
            ),
            r#"{"edit": "score", "row": 3, "score": 19.5}"#,
        );
        std::fs::write(&log, log_text).unwrap();
        for format in ["table", "json"] {
            let f = parse_flags(
                &[
                    "--csv",
                    path.to_str().unwrap(),
                    "--rank-by",
                    "G3",
                    "--edits",
                    log.to_str().unwrap(),
                    "--task",
                    "combined",
                    "--lower",
                    "3",
                    "--upper",
                    "6",
                    "--tau",
                    "20",
                    "--kmin",
                    "5",
                    "--kmax",
                    "15",
                    "--attrs",
                    "school,sex,address",
                    "--format",
                    format,
                    "--checkpoint-every",
                    "3",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
                &crate::args::MONITOR_SPEC,
            )
            .unwrap();
            monitor(&f).unwrap();
        }
        // A zero cadence is a usage error, not a silent clamp.
        let f = parse_flags(
            &[
                "--csv",
                path.to_str().unwrap(),
                "--rank-by",
                "G3",
                "--edits",
                log.to_str().unwrap(),
                "--checkpoint-every",
                "0",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
            &crate::args::MONITOR_SPEC,
        )
        .unwrap();
        let err = monitor(&f).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        // Malformed logs and bad flags fail loudly.
        let bad_log = dir.join("bad_edits.jsonl");
        std::fs::write(&bad_log, "{\"edit\": \"warp\"}\n").unwrap();
        let f = parse_flags(
            &[
                "--csv",
                path.to_str().unwrap(),
                "--rank-by",
                "G3",
                "--edits",
                bad_log.to_str().unwrap(),
                "--tau",
                "20",
                "--kmin",
                "5",
                "--kmax",
                "15",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
            &crate::args::MONITOR_SPEC,
        )
        .unwrap();
        let err = monitor(&f).unwrap_err();
        assert!(err.to_string().contains("edit log line 1"), "{err:?}");
        assert!(matches!(err, CliError::Runtime(_)));
    }

    #[test]
    fn missing_csv_flag_is_reported() {
        let f = detect_flags(&["--rank-by", "G3"]);
        let err = detect(&f).unwrap_err();
        assert!(err.to_string().contains("--csv"));
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn unknown_rank_column_is_reported() {
        let path = student_csv();
        let f = detect_flags(&["--csv", path.to_str().unwrap(), "--rank-by", "nope"]);
        let err = detect(&f).unwrap_err();
        assert!(err.to_string().contains("nope"));
        // The flag is well-formed; the *data* lacks the column: runtime.
        assert!(matches!(err, CliError::Runtime(_)), "{err:?}");
    }

    #[test]
    fn bad_k_range_is_reported() {
        let path = student_csv();
        let f = detect_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--kmin",
            "50",
            "--kmax",
            "10",
        ]);
        let err = detect(&f).unwrap_err();
        assert!(err.to_string().contains("invalid k range"));
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
    }

    #[test]
    fn unknown_group_value_is_reported() {
        let path = student_csv();
        let f = explain_flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--group",
            "sex=Q",
        ]);
        let err = explain(&f).unwrap_err();
        assert!(err.to_string().contains("unknown attribute"));
        assert!(matches!(err, CliError::Runtime(_)), "{err:?}");
    }
}
