//! The CLI subcommands, built directly on the library crates.

use rankfair_core::{render_report, render_report_csv, BiasMeasure, Bounds, DetectConfig, Detector};
use rankfair_data::bucketize::{bucketize_in_place, BinStrategy};
use rankfair_data::csv::{read_csv, CsvOptions};
use rankfair_data::Dataset;
use rankfair_divergence::{display_items, divergent_subgroups, DivergenceConfig};
use rankfair_explain::{ExplainConfig, ForestParams, RankSurrogate};
use rankfair_rank::{AttributeRanker, Ranker, Ranking, SortKey};

use crate::args::{parse_bucketize, parse_group, Flags};

/// Loads the CSV, applies bucketization, and computes the ranking on the
/// raw data — the shared front half of every subcommand.
fn load(flags: &Flags) -> Result<(Dataset, Dataset, Ranking), String> {
    let path = flags.require("csv")?;
    let sep = flags
        .get("sep")
        .map(|s| s.chars().next().unwrap_or(','))
        .unwrap_or(',');
    let opts = CsvOptions {
        separator: sep,
        ..CsvOptions::default()
    };
    let raw = read_csv(path, &opts).map_err(|e| format!("reading {path}: {e}"))?;

    let rank_col = flags.require("rank-by")?;
    if raw.column_index(rank_col).is_none() {
        return Err(format!("--rank-by: no column named `{rank_col}`"));
    }
    let key = if flags.switch("asc") {
        SortKey::asc(rank_col)
    } else {
        SortKey::desc(rank_col)
    };
    let ranking = AttributeRanker::new(vec![key]).rank(&raw);

    let mut detection = raw.clone();
    if let Some(spec) = flags.get("bucketize") {
        for (col, bins) in parse_bucketize(spec)? {
            bucketize_in_place(&mut detection, &col, bins, BinStrategy::EqualWidth)
                .map_err(|e| format!("bucketizing `{col}`: {e}"))?;
        }
    }
    Ok((raw, detection, ranking))
}

fn build_detector<'a>(
    detection: &'a Dataset,
    ranking: &Ranking,
    flags: &Flags,
) -> Result<Detector<'a>, String> {
    match flags.list("attrs") {
        Some(attrs) => {
            let refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            Detector::with_ranking_over(detection, ranking.clone(), &refs)
                .map_err(|e| e.to_string())
        }
        None => Detector::with_ranking(detection, ranking.clone()).map_err(|e| e.to_string()),
    }
}

/// `rankfair detect`.
pub fn detect(flags: &Flags) -> Result<(), String> {
    let (_raw, detection, ranking) = load(flags)?;
    let det = build_detector(&detection, &ranking, flags)?;

    let tau: usize = flags.num("tau", 50)?;
    let k_min: usize = flags.num("kmin", 10)?;
    let k_max: usize = flags.num("kmax", 49)?;
    if k_min == 0 || k_min > k_max || k_max > detection.n_rows() {
        return Err(format!(
            "invalid k range [{k_min}, {k_max}] for {} rows",
            detection.n_rows()
        ));
    }
    let cfg = DetectConfig::new(tau, k_min, k_max);
    let measure = match flags.get("problem").unwrap_or("global") {
        "global" => BiasMeasure::GlobalLower(Bounds::constant(flags.num("lower", 10)?)),
        "prop" | "proportional" => BiasMeasure::Proportional {
            alpha: flags.num("alpha", 0.8)?,
        },
        other => return Err(format!("--problem must be global or prop, got `{other}`")),
    };

    let out = if flags.switch("baseline") {
        det.detect_baseline(&cfg, &measure)
    } else {
        det.detect_optimized(&cfg, &measure)
    };
    let top: usize = flags.num("top", 20)?;
    let mut reports = det.report(&out, &measure);
    for r in &mut reports {
        r.groups.truncate(top);
    }
    match flags.get("format").unwrap_or("table") {
        "table" => print!("{}", render_report(&reports)),
        "csv" => print!("{}", render_report_csv(&reports)),
        other => return Err(format!("--format must be table or csv, got `{other}`")),
    }
    eprintln!(
        "[{} groups over {} k values; {} patterns examined in {:.1?}]",
        out.total_patterns(),
        out.per_k.len(),
        out.stats.patterns_examined(),
        out.stats.elapsed
    );
    Ok(())
}

/// `rankfair explain`.
pub fn explain(flags: &Flags) -> Result<(), String> {
    let (raw, detection, ranking) = load(flags)?;
    let det = build_detector(&detection, &ranking, flags)?;
    let pairs = parse_group(flags.require("group")?)?;
    let refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(a, v)| (a.as_str(), v.as_str()))
        .collect();
    let pattern = det
        .space()
        .pattern(&refs)
        .ok_or("unknown attribute or value in --group")?;
    let members = det.group_members(&pattern);
    if members.is_empty() {
        return Err("the group matches no tuples".into());
    }
    let k: usize = flags.num("k", 49.min(detection.n_rows()))?;
    let (sd, count) = det.index().counts(&pattern, k);
    println!(
        "group {} — s_D = {sd}, top-{k} = {count}",
        det.describe(&pattern)
    );

    let config = ExplainConfig {
        forest: ForestParams {
            n_trees: flags.num("trees", 30)?,
            ..ForestParams::default()
        },
        shapley_samples: flags.num("samples", 48)?,
        ..ExplainConfig::default()
    };
    let surrogate = RankSurrogate::fit(&raw, &ranking, &config);
    println!("surrogate in-sample R² = {:.3}\n", surrogate.fit_quality());
    let ex = surrogate.explain_group(&members);
    println!("aggregated Shapley values (top 6 attributes):");
    print!("{}", ex.render(6));

    let top_attr = ex.ranked_attributes()[0].0.clone();
    let topk: Vec<u32> = ranking.top_k(k).to_vec();
    let cmp = rankfair_explain::distribution::compare_distributions(&raw, &top_attr, &topk, &members);
    println!("\nvalue distribution of `{top_attr}`:");
    print!("{}", cmp.render());
    Ok(())
}

/// `rankfair compare`.
pub fn compare(flags: &Flags) -> Result<(), String> {
    let (_raw, detection, ranking) = load(flags)?;
    let det = build_detector(&detection, &ranking, flags)?;
    let k: usize = flags.num("k", 10)?;
    let tau: usize = flags.num("tau", 50)?;
    let cfg = DetectConfig::new(tau, k, k);

    let global = det.detect_global(&cfg, &Bounds::constant(flags.num("lower", 10)?));
    let prop = det.detect_proportional(&cfg, flags.num("alpha", 0.8)?);
    println!("GlobalBounds ({} groups):", global.per_k[0].patterns.len());
    for p in &global.per_k[0].patterns {
        println!("  {}", det.describe(p));
    }
    println!("\nPropBounds ({} groups):", prop.per_k[0].patterns.len());
    for p in &prop.per_k[0].patterns {
        println!("  {}", det.describe(p));
    }

    let support: f64 = flags.num("support", 0.13)?;
    let cols = flags.list("attrs").map(|attrs| {
        attrs
            .iter()
            .filter_map(|a| detection.column_index(a))
            .collect::<Vec<_>>()
    });
    let div = divergent_subgroups(
        &detection,
        &ranking,
        k,
        &DivergenceConfig {
            min_support: support,
            max_len: 0,
            columns: cols,
        },
    );
    println!(
        "\nDivergence baseline ({} subgroups, five most negative):",
        div.len()
    );
    for s in div.iter().take(5) {
        println!(
            "  {:50} support {:>5}  divergence {:+.3}",
            display_items(&detection, &s.items),
            s.support,
            s.divergence
        );
    }
    Ok(())
}

/// `rankfair demo` — the Figure 1 running example.
pub fn demo() -> Result<(), String> {
    let ds = rankfair_data::examples::students_fig1();
    let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
    let det = Detector::new(&ds, &ranker).map_err(|e| e.to_string())?;
    println!("Figure 1 running example: 16 students, ranking by grade then failures.\n");
    let cfg = DetectConfig::new(4, 4, 5);
    let bounds = Bounds::constant(2);
    let out = det.detect_global(&cfg, &bounds);
    println!("Global bounds (τs = 4, L = 2):");
    print!(
        "{}",
        render_report(&det.report(&out, &BiasMeasure::GlobalLower(bounds)))
    );
    let cfg = DetectConfig::new(5, 4, 5);
    let out = det.detect_proportional(&cfg, 0.9);
    println!("\nProportional (τs = 5, α = 0.9):");
    print!(
        "{}",
        render_report(&det.report(&out, &BiasMeasure::Proportional { alpha: 0.9 }))
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_flags;

    fn flags(args: &[&str]) -> Flags {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn student_csv() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rankfair_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("student.csv");
        let ds = rankfair_synth::student(rankfair_synth::SynthConfig::new(150, 7));
        rankfair_data::csv::write_csv(&ds, &path, ',').unwrap();
        path
    }

    #[test]
    fn demo_runs() {
        demo().unwrap();
    }

    #[test]
    fn detect_runs_on_csv() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--bucketize",
            "age=3,absences=4,G1=4,G2=4,G3=4",
            "--tau",
            "20",
            "--kmin",
            "5",
            "--kmax",
            "10",
            "--lower",
            "3",
        ]);
        detect(&f).unwrap();
    }

    #[test]
    fn detect_proportional_with_attr_subset() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--problem",
            "prop",
            "--alpha",
            "0.8",
            "--tau",
            "20",
            "--kmin",
            "5",
            "--kmax",
            "10",
            "--attrs",
            "school,sex,address",
        ]);
        detect(&f).unwrap();
    }

    #[test]
    fn explain_runs_on_csv() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--group",
            "sex=F",
            "--k",
            "20",
            "--trees",
            "8",
            "--samples",
            "8",
        ]);
        explain(&f).unwrap();
    }

    #[test]
    fn compare_runs_on_csv() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--k",
            "10",
            "--tau",
            "20",
            "--support",
            "0.13",
            "--attrs",
            "school,sex,address",
        ]);
        compare(&f).unwrap();
    }

    #[test]
    fn detect_csv_format() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--bucketize",
            "G3=4",
            "--tau",
            "20",
            "--kmin",
            "5",
            "--kmax",
            "6",
            "--lower",
            "2",
            "--format",
            "csv",
        ]);
        detect(&f).unwrap();
        let bad = flags(&["--csv", path.to_str().unwrap(), "--rank-by", "G3", "--format", "xml"]);
        assert!(detect(&bad).unwrap_err().contains("--format"));
    }

    #[test]
    fn missing_csv_flag_is_reported() {
        let f = flags(&["--rank-by", "G3"]);
        assert!(detect(&f).unwrap_err().contains("--csv"));
    }

    #[test]
    fn unknown_rank_column_is_reported() {
        let path = student_csv();
        let f = flags(&["--csv", path.to_str().unwrap(), "--rank-by", "nope"]);
        assert!(detect(&f).unwrap_err().contains("nope"));
    }

    #[test]
    fn bad_k_range_is_reported() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--kmin",
            "50",
            "--kmax",
            "10",
        ]);
        assert!(detect(&f).unwrap_err().contains("invalid k range"));
    }

    #[test]
    fn unknown_group_value_is_reported() {
        let path = student_csv();
        let f = flags(&[
            "--csv",
            path.to_str().unwrap(),
            "--rank-by",
            "G3",
            "--group",
            "sex=Q",
        ]);
        assert!(explain(&f).unwrap_err().contains("unknown attribute"));
    }
}
