//! Flag parsing for the `rankfair` CLI (a tiny hand-rolled parser — the
//! workspace stays dependency-light). Each subcommand declares its valid
//! flag set; unknown flags are rejected with the valid set in the error.

use std::collections::BTreeMap;

/// Usage text shown by `rankfair help`.
pub const USAGE: &str = "\
rankfair — detection of groups with biased representation in ranking (ICDE 2023)

USAGE:
  rankfair demo
      Run the paper's Figure 1 running example end to end.

  rankfair detect --csv FILE --rank-by COL [options]
      Audit the ranking for groups with biased representation.
        --sep CHAR          CSV separator (default ',')
        --asc               rank ascending (default: descending)
        --task under|over|combined   what to detect (default under)
        --engine optimized|baseline  algorithm family (default optimized)
        --threads N         worker threads over the k range (default 1, 0 = all cores)
        --shards N          partition rows across N shard-local indexes whose
                            pattern counts merge additively (default 1; results
                            are identical to the monolithic index)
        --problem global|prop   under measure (default global; task under only)
        --lower N           lower bound L_k (default 10; global under / combined)
        --upper N           upper bound U_k (default 20; over / combined)
        --scope specific|general  over boundary (default specific; task over only)
        --alpha X           proportional factor α (default 0.8; --problem prop only)
        --tau N             size threshold τs (default 50)
        --kmin N --kmax N   k range (default 10..49)
        --deadline SECS     wall-clock budget; exceeding it truncates the k range
        --attrs a,b,c       pattern attributes (default: all categorical)
        --bucketize c=BINS,...  bucketize numeric columns before detection
        --baseline          deprecated alias for --engine baseline
        --top N             print at most N groups per k (default 20)
        --format table|csv|json  output format (default table)

  rankfair serve [options]
      Serve JSONL audit requests from stdin to stdout (one JSON object per
      line, responses in request order). The Figure 1 example dataset is
      preloaded as `fig1`; further datasets are registered with --datasets
      or in-stream {\"op\": \"register\"} requests. Live monitors are
      driven with {\"op\": \"register_monitor\"|\"update\"|\"snapshot\"}.
        --workers N         worker threads answering requests (default 1)
        --datasets n=p,...  preload CSV datasets as name=path pairs
        --no-timing         zero wall-clock fields (deterministic output)

  rankfair serve-net [options]
      Serve the same JSONL protocol over TCP and/or Unix-domain sockets:
      every connection is an independent pipelined session (responses in
      that connection's request order) over one shared worker pool with
      per-monitor/per-dataset ordering. An in-stream {\"op\": \"shutdown\"}
      drains and stops the server. The Figure 1 example dataset is
      preloaded as `fig1`.
        --listen a,b,...    addresses to bind (default tcp:127.0.0.1:7878);
                            forms: tcp:host:port, host:port, unix:/path.sock;
                            repeatable, comma lists and repeats accumulate
        --workers N         worker threads shared by all connections (default 4)
        --datasets n=p,...  preload CSV datasets as name=path pairs
        --max-conns N       concurrent connection cap (default 256); excess
                            connections get one in-band `overloaded` error
        --window N          per-connection pipeline window: responses in
                            flight past dispatch (default 64)
        --max-line-bytes N  longest accepted request line (default 1048576)
        --idle-timeout SECS close connections idle this long; also bounds
                            writes to a peer that never reads (default 300)
        --no-timing         zero wall-clock fields (deterministic output)

  rankfair monitor --csv FILE --rank-by COL --edits FILE [options]
      Replay a JSONL edit log against a live monitor: each log line is one
      edit batch ({\"edit\": \"score\"|\"insert\", ...} or
      {\"edits\": [...]}), re-audited by delta instead of a full rebuild.
        --sep CHAR          CSV separator (default ',')
        --asc               rank ascending (default: descending)
        --task under|over|combined   what to detect (default under)
        --engine optimized|baseline  algorithm family (default optimized)
        --problem global|prop   under measure (default global; task under only)
        --lower N --upper N --scope specific|general --alpha X
                            task parameters, as in detect
        --tau N             size threshold τs (default 50)
        --kmin N --kmax N   k range (default 10..49)
        --attrs a,b,c       pattern attributes (default: all categorical)
        --top N             print at most N groups per k in the final report
        --format table|json output format (default table; json = one delta
                            object per batch plus a final snapshot object)

  rankfair explain --csv FILE --rank-by COL --group \"a=v,b=w\" [options]
      Shapley-explain why a group ranks where it does.
        --k N               top-k used for the distribution comparison (default 49)
        --trees N           forest size (default 30)
        --samples N         Shapley samples per tuple (default 48)

  rankfair compare --csv FILE --rank-by COL [options]
      Run the divergence baseline next to the detection algorithms.
        --k N               top-k (default 10)
        --support X         minimum support fraction (default 0.13)
        --attrs a,b,c       subgroup attributes
";

/// The flags a subcommand accepts: value-taking flags and switches.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Flags that take a value (`--flag value`).
    pub values: &'static [&'static str],
    /// Flags that take no value (`--flag`).
    pub switches: &'static [&'static str],
}

/// `rankfair detect`.
pub const DETECT_SPEC: FlagSpec = FlagSpec {
    values: &[
        "csv",
        "sep",
        "rank-by",
        "attrs",
        "bucketize",
        "task",
        "engine",
        "threads",
        "shards",
        "problem",
        "lower",
        "upper",
        "scope",
        "alpha",
        "tau",
        "kmin",
        "kmax",
        "deadline",
        "top",
        "format",
    ],
    switches: &["asc", "baseline"],
};

/// `rankfair explain`.
pub const EXPLAIN_SPEC: FlagSpec = FlagSpec {
    values: &[
        "csv",
        "sep",
        "rank-by",
        "attrs",
        "bucketize",
        "group",
        "k",
        "trees",
        "samples",
    ],
    switches: &["asc"],
};

/// `rankfair compare`.
pub const COMPARE_SPEC: FlagSpec = FlagSpec {
    values: &[
        "csv",
        "sep",
        "rank-by",
        "attrs",
        "bucketize",
        "k",
        "tau",
        "lower",
        "alpha",
        "support",
    ],
    switches: &["asc"],
};

/// `rankfair demo`.
pub const DEMO_SPEC: FlagSpec = FlagSpec {
    values: &[],
    switches: &[],
};

/// `rankfair serve`.
pub const SERVE_SPEC: FlagSpec = FlagSpec {
    values: &["workers", "datasets"],
    switches: &["no-timing"],
};

/// `rankfair serve-net`.
pub const SERVE_NET_SPEC: FlagSpec = FlagSpec {
    values: &[
        "listen",
        "workers",
        "datasets",
        "max-conns",
        "window",
        "max-line-bytes",
        "idle-timeout",
    ],
    switches: &["no-timing"],
};

/// `rankfair monitor`.
pub const MONITOR_SPEC: FlagSpec = FlagSpec {
    values: &[
        "csv",
        "sep",
        "rank-by",
        "edits",
        "attrs",
        "task",
        "engine",
        "problem",
        "lower",
        "upper",
        "scope",
        "alpha",
        "tau",
        "kmin",
        "kmax",
        "top",
        "format",
        "checkpoint-every",
    ],
    switches: &["asc"],
};

/// Parsed `--flag value` / `--flag` pairs. A value flag may repeat:
/// [`Flags::get`] reads the last occurrence, [`Flags::list`] gathers
/// every occurrence (each comma-split), so `--listen a --listen b`
/// and `--listen a,b` are equivalent.
#[derive(Debug, Default)]
pub struct Flags {
    values: BTreeMap<String, Vec<String>>,
    switches: Vec<String>,
}

fn valid_set(spec: &FlagSpec) -> String {
    let mut all: Vec<String> = spec
        .values
        .iter()
        .chain(spec.switches.iter())
        .map(|f| format!("--{f}"))
        .collect();
    all.sort();
    all.join(", ")
}

/// Parses `--flag [value]` sequences against `spec`. Unknown flags are an
/// error listing the valid flag set.
pub fn parse_flags(argv: &[String], spec: &FlagSpec) -> Result<Flags, String> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = &argv[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{arg}`"));
        };
        if spec.switches.contains(&name) {
            flags.switches.push(name.to_string());
        } else if spec.values.contains(&name) {
            i += 1;
            let value = argv
                .get(i)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags
                .values
                .entry(name.to_string())
                .or_default()
                .push(value.clone());
        } else {
            return Err(format!(
                "unknown flag `--{name}` for this command; valid flags: {}",
                valid_set(spec)
            ));
        }
        i += 1;
    }
    Ok(flags)
}

impl Flags {
    /// String flag (last occurrence wins).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// Parsed numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{v}`")),
        }
    }

    /// Boolean switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Comma-separated list flag; repeated occurrences accumulate.
    pub fn list(&self, name: &str) -> Option<Vec<String>> {
        self.values.get(name).map(|vals| {
            vals.iter()
                .flat_map(|v| v.split(','))
                .map(|s| s.trim().to_string())
                .collect()
        })
    }
}

/// Parses `attr=value` pairs from `--group "a=v,b=w"`.
pub fn parse_group(spec: &str) -> Result<Vec<(String, String)>, String> {
    spec.split(',')
        .map(|term| {
            let (a, v) = term
                .split_once('=')
                .ok_or_else(|| format!("group term `{term}` must look like attr=value"))?;
            Ok((a.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

/// Parses `col=bins` pairs from `--bucketize "age=4,income=3"`.
pub fn parse_bucketize(spec: &str) -> Result<Vec<(String, usize)>, String> {
    spec.split(',')
        .map(|term| {
            let (c, b) = term
                .split_once('=')
                .ok_or_else(|| format!("bucketize term `{term}` must look like col=bins"))?;
            let bins: usize = b
                .trim()
                .parse()
                .map_err(|_| format!("bucketize `{term}`: `{b}` is not a number"))?;
            Ok((c.trim().to_string(), bins))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = parse_flags(
            &argv(&["--csv", "x.csv", "--asc", "--tau", "50"]),
            &DETECT_SPEC,
        )
        .unwrap();
        assert_eq!(f.get("csv"), Some("x.csv"));
        assert!(f.switch("asc"));
        assert!(!f.switch("baseline"));
        assert_eq!(f.num::<usize>("tau", 0).unwrap(), 50);
        assert_eq!(f.num::<usize>("kmin", 10).unwrap(), 10);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse_flags(&argv(&["--csv"]), &DETECT_SPEC).is_err());
        assert!(parse_flags(&argv(&["stray"]), &DETECT_SPEC).is_err());
    }

    #[test]
    fn unknown_flag_is_rejected_with_valid_set() {
        let err = parse_flags(&argv(&["--frobnicate", "1"]), &DETECT_SPEC).unwrap_err();
        assert!(err.contains("unknown flag `--frobnicate`"), "{err}");
        assert!(err.contains("--csv"), "{err}");
        assert!(err.contains("--task"), "{err}");
        // A detect-only flag is unknown to explain.
        let err = parse_flags(&argv(&["--engine", "baseline"]), &EXPLAIN_SPEC).unwrap_err();
        assert!(err.contains("unknown flag `--engine`"), "{err}");
        assert!(err.contains("--group"), "{err}");
        // demo takes nothing.
        assert!(parse_flags(&argv(&["--anything", "x"]), &DEMO_SPEC).is_err());
    }

    #[test]
    fn require_and_bad_number() {
        let f = parse_flags(&argv(&["--tau", "abc"]), &DETECT_SPEC).unwrap();
        assert!(f.require("csv").is_err());
        assert!(f.num::<usize>("tau", 0).is_err());
    }

    #[test]
    fn list_splits_on_commas() {
        let f = parse_flags(&argv(&["--attrs", "a, b,c"]), &DETECT_SPEC).unwrap();
        assert_eq!(f.list("attrs").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn repeated_value_flags_accumulate_in_list_and_last_wins_in_get() {
        let f = parse_flags(
            &argv(&["--listen", "tcp:a:1", "--listen", "unix:/s,tcp:b:2"]),
            &SERVE_NET_SPEC,
        )
        .unwrap();
        assert_eq!(
            f.list("listen").unwrap(),
            vec!["tcp:a:1", "unix:/s", "tcp:b:2"]
        );
        assert_eq!(f.get("listen"), Some("unix:/s,tcp:b:2"));
    }

    #[test]
    fn group_spec_parses() {
        let g = parse_group("sex=F, address=R").unwrap();
        assert_eq!(g[0], ("sex".to_string(), "F".to_string()));
        assert_eq!(g[1], ("address".to_string(), "R".to_string()));
        assert!(parse_group("oops").is_err());
    }

    #[test]
    fn bucketize_spec_parses() {
        let b = parse_bucketize("age=4,income=3").unwrap();
        assert_eq!(b, vec![("age".to_string(), 4), ("income".to_string(), 3)]);
        assert!(parse_bucketize("age=four").is_err());
    }
}
