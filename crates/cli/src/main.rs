//! `rankfair` — detect and explain groups with biased representation in a
//! ranking, from the command line.
//!
//! ```text
//! rankfair demo
//! rankfair detect  --csv data.csv --rank-by score --tau 50 --kmin 10 --kmax 49 --lower 10
//! rankfair detect  --csv data.csv --rank-by score --problem prop --alpha 0.8
//! rankfair detect  --csv data.csv --rank-by score --task over --upper 20 --scope specific
//! rankfair detect  --csv data.csv --rank-by score --task combined --threads 4
//! rankfair explain --csv data.csv --rank-by score --group "gender=F,address=R" --k 49
//! rankfair compare --csv data.csv --rank-by score --k 10 --support 0.13
//! rankfair monitor --csv data.csv --rank-by score --edits edits.jsonl --task combined
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{}", args::USAGE);
        return ExitCode::SUCCESS;
    }
    let cmd = argv[0].clone();
    let spec = match cmd.as_str() {
        "demo" => &args::DEMO_SPEC,
        "detect" => &args::DETECT_SPEC,
        "explain" => &args::EXPLAIN_SPEC,
        "compare" => &args::COMPARE_SPEC,
        "serve" => &args::SERVE_SPEC,
        "serve-net" => &args::SERVE_NET_SPEC,
        "monitor" => &args::MONITOR_SPEC,
        other => {
            eprintln!("error: unknown command `{other}`");
            eprintln!("run `rankfair help` for usage");
            return ExitCode::from(2);
        }
    };
    let flags = match args::parse_flags(&argv[1..], spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `rankfair help` for usage");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "demo" => commands::demo(),
        "detect" => commands::detect(&flags),
        "explain" => commands::explain(&flags),
        "compare" => commands::compare(&flags),
        "serve" => commands::serve(&flags),
        "serve-net" => commands::serve_net(&flags),
        "monitor" => commands::monitor(&flags),
        _ => unreachable!("command validated above"),
    };
    // Exit codes distinguish *how* a command failed: 2 for usage errors
    // (the invocation is wrong), 1 for runtime failures (the environment
    // or data is). Scripts and the serve smoke test rely on this.
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::Usage(e)) => {
            eprintln!("error: {e}");
            eprintln!("run `rankfair help` for usage");
            ExitCode::from(2)
        }
        Err(commands::CliError::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
