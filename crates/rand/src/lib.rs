//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: a seedable deterministic generator ([`rngs::StdRng`]),
//! uniform sampling of primitives ([`RngExt::random`]), integer ranges
//! ([`RngExt::random_range`]) and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]).
//!
//! The container this repository builds in has no crates.io access, so the
//! real `rand` cannot be fetched; this shim keeps the synthetic-data and
//! explanation crates fully deterministic (xoshiro256++ seeded via
//! SplitMix64) without any network dependency. The API mirrors `rand 0.9`
//! closely enough that swapping the real crate back in is a one-line
//! `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++, seeded through a
    /// SplitMix64 expansion exactly as the reference implementation
    /// recommends. Deterministic, `Clone`, and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a generator.
pub trait Random: Sized {
    /// Draws one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32 // lint:allow(lossy-cast) -- deliberate truncation: the high 32 bits of a 64-bit draw ARE the u32 sample
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly drawn value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniformly drawn value from an integer range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(2..=5usize);
            assert!((2..=5).contains(&w));
            let u = rng.random_range(0..10u32);
            assert!(u < 10);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
