//! Fixture-based self-tests: every rule gets positive, negative, and
//! suppressed cases, including the exact shapes of the two historical
//! bugs the lint exists to keep out — the PR 3 read-guard-into-write
//! deadlock and the PR 5 `as u32` length wrap.

use rankfair_lint::{analyze_source, manifest, Analysis, Config};

/// A neutral path: no path-scoped rule applies, so only
/// `lock-guard-liveness` and `lossy-cast` can fire.
const NEUTRAL: &str = "crates/core/src/engine.rs";
/// A serving-path file: `panic-path` and `strict-parse` both apply.
const SERVING: &str = "crates/service/src/wire.rs";

fn lint(file: &str, src: &str) -> Analysis {
    analyze_source(file, src, &Config::default())
}

fn rule_lines(a: &Analysis, rule: &str) -> Vec<u32> {
    a.findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn assert_clean(a: &Analysis) {
    assert!(
        a.findings.is_empty(),
        "expected no findings, got: {:?}",
        a.findings
    );
}

// ---- lock-guard-liveness ----------------------------------------------

/// The exact PR 3 shape: the `if let` header holds a read guard that
/// Rust keeps alive through *both* branches, so the `else` branch's
/// `.write()` self-deadlocks.
#[test]
fn lock_guard_pr3_read_into_write_fires() {
    let src = "\
fn lookup(map: &std::sync::RwLock<Table>, k: u32) -> u32 {
    if let Some(v) = map.read().expect(\"poisoned\").get(&k) {
        *v
    } else {
        let mut w = map.write().expect(\"poisoned\");
        w.insert(k, 0);
        0
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lock-guard-liveness"), vec![2]);
}

/// The PR 3 fix shape: clone out of the guard in a plain `let`, so the
/// guard is dropped before the write path. Must not fire.
#[test]
fn lock_guard_clone_out_then_write_is_clean() {
    let src = "\
fn lookup(map: &std::sync::RwLock<Table>, k: u32) -> u32 {
    let existing = map.read().expect(\"poisoned\").get(&k).cloned();
    match existing {
        Some(v) => v,
        None => {
            let mut w = map.write().expect(\"poisoned\");
            w.insert(k, 0);
            0
        }
    }
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// A `for` header guard iterated while the body locks the same table.
#[test]
fn lock_guard_for_header_fires() {
    let src = "\
fn sweep(table: &std::sync::RwLock<Table>) {
    for k in table.read().unwrap().stale_keys() {
        table.write().unwrap().remove(&k);
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lock-guard-liveness"), vec![2]);
}

/// Writing a *different* lock inside the guarded body is fine.
#[test]
fn lock_guard_distinct_locks_is_clean() {
    let src = "\
fn cross(a: &std::sync::RwLock<Table>, b: &std::sync::RwLock<Table>) {
    if let Some(v) = a.read().unwrap().peek() {
        b.write().unwrap().push(v);
    }
}
";
    assert_clean(&lint(NEUTRAL, src));
}

#[test]
fn lock_guard_suppression_records_allow() {
    let src = "\
fn lookup(map: &std::sync::RwLock<Table>, k: u32) -> u32 {
    // lint:allow(lock-guard-liveness) -- fixture: deadlock shape kept on purpose
    if let Some(v) = map.read().unwrap().get(&k) {
        *v
    } else {
        map.write().unwrap().insert(k, 0)
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "lock-guard-liveness");
    assert!(a.allows[0].reason.starts_with("fixture"));
}

// ---- panic-path -------------------------------------------------------

#[test]
fn panic_path_flags_unwrap_expect_macros_and_indexing() {
    let src = "\
fn handle(req: &[u8], table: &Table) -> u32 {
    let head = req[0];
    let parsed = parse(req).unwrap();
    let row = table.find(parsed).expect(\"present\");
    if head == 0 {
        panic!(\"empty request\");
    }
    match row {
        Row::Data(v) => v,
        Row::Hole => unreachable!(),
    }
}
";
    let a = lint(SERVING, src);
    let lines = rule_lines(&a, "panic-path");
    assert_eq!(lines, vec![2, 3, 4, 6, 10], "findings: {:?}", a.findings);
}

/// The same source on a non-serving file produces nothing: panic-path
/// is scoped to the wire/serve/parse/monitor files.
#[test]
fn panic_path_is_scoped_to_serving_files() {
    let src = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n";
    assert!(!rule_lines(&lint(SERVING, src), "panic-path").is_empty());
    assert_clean(&lint(NEUTRAL, src));
}

/// `.lock().expect(..)` / `.read().expect(..)` propagate an existing
/// poison panic rather than creating a new path — exempt.
#[test]
fn panic_path_lock_poison_expect_is_exempt() {
    let src = "\
fn snapshot(state: &std::sync::Mutex<State>) -> State {
    state.lock().expect(\"poisoned\").clone()
}
fn view(state: &std::sync::RwLock<State>) -> State {
    state.read().expect(\"poisoned\").clone()
}
";
    assert_clean(&lint(SERVING, src));
}

/// Attributes, `vec![..]`, slice types, and array literals all contain
/// `[` without being indexing.
#[test]
fn panic_path_indexing_heuristic_excludes_non_indexing_brackets() {
    let src = "\
#[derive(Debug)]
struct Frame {
    payload: Vec<u8>,
}
fn build() -> Vec<u8> {
    let header: [u8; 2] = [0x52, 0x46];
    let mut out: Vec<u8> = vec![header.len() as u8];
    out.extend_from_slice(&header);
    out
}
fn read(buf: &mut [u8]) -> [u8; 2] {
    let _ = buf.len();
    return [0, 1];
}
";
    let a = lint(SERVING, src);
    assert!(rule_lines(&a, "panic-path").is_empty(), "{:?}", a.findings);
}

/// `#[cfg(test)]` spans are exempt from every rule.
#[test]
fn rules_skip_cfg_test_spans() {
    let src = "\
fn serve(b: &[u8]) -> usize {
    b.len()
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(v[0], parse(&v).unwrap());
        let _ = v.len() as u16;
    }
}
";
    assert_clean(&lint(SERVING, src));
}

/// Panic-looking text inside string literals is not code; the lexer
/// must keep it out of the token stream.
#[test]
fn panic_path_ignores_strings_and_comments() {
    let src = "\
fn describe() -> &'static str {
    // the old code called table.get(k).unwrap() here
    \"refusing to unwrap() or panic!() in serving paths\"
}
";
    assert_clean(&lint(SERVING, src));
}

#[test]
fn panic_path_trailing_and_own_line_suppressions() {
    let src = "\
fn handle(req: &[u8]) -> u8 {
    let head = req[0]; // lint:allow(panic-path) -- fixture: trailing form
    // lint:allow(panic-path) -- fixture: own-line form targets the next line
    let tail = req[1];
    head + tail
}
";
    let a = lint(SERVING, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 2);
    assert_eq!(a.allows[0].line, 2);
    assert_eq!(a.allows[1].line, 3);
}

// ---- lossy-cast -------------------------------------------------------

/// The exact PR 5 shape: a length collapsed to `u32` with no bounds
/// evidence in the enclosing function.
#[test]
fn lossy_cast_pr5_len_as_u32_fires() {
    let src = "\
fn next_id(nodes: &[Node]) -> u32 {
    nodes.len() as u32
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lossy-cast"), vec![2]);
}

/// `try_from` in the same function is bounds evidence: the author
/// visibly confronted the overflow case.
#[test]
fn lossy_cast_try_from_evidence_is_clean() {
    let src = "\
fn next_id(nodes: &[Node]) -> u32 {
    let n = u32::try_from(nodes.len()).expect(\"node ids fit u32\");
    n as u32
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// Comparing against `<target>::MAX` in the same function also counts.
#[test]
fn lossy_cast_max_comparison_evidence_is_clean() {
    let src = "\
fn code(card: usize) -> u16 {
    assert!(card <= usize::from(u16::MAX));
    card as u16
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// Evidence is per-function: a `try_from` in one function does not
/// launder a bare cast in its neighbor.
#[test]
fn lossy_cast_evidence_does_not_leak_across_functions() {
    let src = "\
fn checked(n: usize) -> u32 {
    u32::try_from(n).expect(\"fits\")
}
fn unchecked(n: usize) -> u32 {
    n as u32
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lossy-cast"), vec![5]);
}

/// Literal sources that fit the target are fine; ones that don't, fire.
#[test]
fn lossy_cast_literal_fit_is_radix_aware() {
    let src = "\
fn lits() -> (u8, u8, u8) {
    (255 as u8, 0xFF as u8, 0x1_00 as u8)
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lossy-cast"), vec![2]);
}

/// Widening and same-width casts are not narrowing.
#[test]
fn lossy_cast_ignores_widening() {
    let src = "\
fn widen(x: u16) -> (u64, usize) {
    (x as u64, x as usize)
}
";
    assert_clean(&lint(NEUTRAL, src));
}

#[test]
fn lossy_cast_suppression_records_allow() {
    let src = "\
fn sample(draw: u64) -> u32 {
    (draw >> 32) as u32 // lint:allow(lossy-cast) -- fixture: high bits are the sample
}
";
    let a = lint(NEUTRAL, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "lossy-cast");
}

// ---- strict-parse -----------------------------------------------------

/// Destructuring two members without rejecting unknowns silently
/// accepts misspelled fields on the wire.
#[test]
fn strict_parse_two_members_without_reject_fires() {
    let src = "\
fn edit_from_json(pairs: &Obj) -> Result<Edit, String> {
    let row = pairs.get(\"row\").ok_or(\"missing row\")?;
    let score = pairs.get(\"score\").ok_or(\"missing score\")?;
    Ok(Edit::new(row, score))
}
";
    let a = lint(SERVING, src);
    assert_eq!(rule_lines(&a, "strict-parse"), vec![1]);
}

#[test]
fn strict_parse_reject_unknown_call_is_clean() {
    let src = "\
fn edit_from_json(pairs: &Obj) -> Result<Edit, String> {
    reject_unknown_members(pairs, &[\"row\", \"score\"], \"edit\")?;
    let row = pairs.get(\"row\").ok_or(\"missing row\")?;
    let score = pairs.get(\"score\").ok_or(\"missing score\")?;
    Ok(Edit::new(row, score))
}
";
    assert_clean(&lint(SERVING, src));
}

/// One member is a lookup, not a destructure; and the rule is scoped
/// to wire-facing files.
#[test]
fn strict_parse_scope_and_single_member() {
    let single = "\
fn kind(pairs: &Obj) -> Option<&Value> {
    pairs.get(\"kind\")
}
";
    assert_clean(&lint(SERVING, single));

    let two = "\
fn pair(pairs: &Obj) -> (Option<&Value>, Option<&Value>) {
    (pairs.get(\"a\"), pairs.get(\"b\"))
}
";
    assert_clean(&lint(NEUTRAL, two));
}

// ---- offline-deps -----------------------------------------------------

fn lint_manifest(src: &str) -> Vec<rankfair_lint::Finding> {
    let mut out = Vec::new();
    manifest::offline_deps("crates/demo/Cargo.toml", src, &mut out);
    out
}

#[test]
fn offline_deps_registry_dep_fires() {
    let findings = lint_manifest("[package]\nname = \"demo\"\n\n[dependencies]\nserde = \"1.0\"\n");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "offline-deps");
    assert_eq!(findings[0].line, 5);
}

#[test]
fn offline_deps_path_and_workspace_deps_are_clean() {
    let findings = lint_manifest(
        "[dependencies]\n\
         rankfair_core = { path = \"../core\" }\n\
         rankfair_json = { workspace = true }\n\
         \n\
         [dev-dependencies]\n\
         rankfair_synth = { path = \"../synth\" }\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn offline_deps_table_form_needs_path() {
    let bad = lint_manifest("[dependencies.serde]\nversion = \"1.0\"\n");
    assert_eq!(bad.len(), 1);
    let good = lint_manifest("[dependencies.rankfair_core]\npath = \"../core\"\n");
    assert!(good.is_empty(), "{good:?}");
}

// ---- suppression meta-rules -------------------------------------------

#[test]
fn allow_without_reason_is_a_finding() {
    let src = "\
fn handle(req: &[u8]) -> u8 {
    req[0] // lint:allow(panic-path)
}
";
    let a = lint(SERVING, src);
    assert_eq!(rule_lines(&a, "allow-missing-reason"), vec![2]);
    // The reasonless allow suppresses nothing: the finding survives.
    assert_eq!(rule_lines(&a, "panic-path"), vec![2]);
    assert!(a.allows.is_empty());
}

#[test]
fn allow_naming_unknown_or_meta_rule_is_a_finding() {
    let src = "\
fn f() {
    let _ = 0; // lint:allow(bogus-rule) -- typo'd rule id
    let _ = 1; // lint:allow(allow-unused) -- meta rules cannot be suppressed
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "allow-unknown-rule"), vec![2, 3]);
}

#[test]
fn allow_that_suppresses_nothing_is_a_finding() {
    let src = "\
fn f(n: u64) -> u64 {
    n + 1 // lint:allow(lossy-cast) -- stale: the cast this covered was removed
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "allow-unused"), vec![2]);
    assert!(a.allows.is_empty());
}

/// Doc comments *describing* the syntax are prose, not directives.
#[test]
fn doc_comment_mentioning_allow_syntax_is_ignored() {
    let src = "\
/// Suppress with `lint:allow(panic-path) -- reason`.
fn f() {}
";
    assert_clean(&lint(NEUTRAL, src));
}
