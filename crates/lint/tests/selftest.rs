//! Fixture-based self-tests: every rule gets positive, negative, and
//! suppressed cases, including the exact shapes of the two historical
//! bugs the lint exists to keep out — the PR 3 read-guard-into-write
//! deadlock and the PR 5 `as u32` length wrap.

use rankfair_lint::{analyze_source, manifest, Analysis, Config};

/// A neutral path: no path-scoped rule applies, so only
/// `lock-guard-liveness` and `lossy-cast` can fire.
const NEUTRAL: &str = "crates/core/src/engine.rs";
/// A serving-path file: `panic-path` and `strict-parse` both apply.
const SERVING: &str = "crates/service/src/wire.rs";

fn lint(file: &str, src: &str) -> Analysis {
    analyze_source(file, src, &Config::default())
}

fn rule_lines(a: &Analysis, rule: &str) -> Vec<u32> {
    a.findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn assert_clean(a: &Analysis) {
    assert!(
        a.findings.is_empty(),
        "expected no findings, got: {:?}",
        a.findings
    );
}

// ---- lock-guard-liveness ----------------------------------------------

/// The exact PR 3 shape: the `if let` header holds a read guard that
/// Rust keeps alive through *both* branches, so the `else` branch's
/// `.write()` self-deadlocks.
#[test]
fn lock_guard_pr3_read_into_write_fires() {
    let src = "\
fn lookup(map: &std::sync::RwLock<Table>, k: u32) -> u32 {
    if let Some(v) = map.read().expect(\"poisoned\").get(&k) {
        *v
    } else {
        let mut w = map.write().expect(\"poisoned\");
        w.insert(k, 0);
        0
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lock-guard-liveness"), vec![2]);
}

/// The PR 3 fix shape: clone out of the guard in a plain `let`, so the
/// guard is dropped before the write path. Must not fire.
#[test]
fn lock_guard_clone_out_then_write_is_clean() {
    let src = "\
fn lookup(map: &std::sync::RwLock<Table>, k: u32) -> u32 {
    let existing = map.read().expect(\"poisoned\").get(&k).cloned();
    match existing {
        Some(v) => v,
        None => {
            let mut w = map.write().expect(\"poisoned\");
            w.insert(k, 0);
            0
        }
    }
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// A `for` header guard iterated while the body locks the same table.
#[test]
fn lock_guard_for_header_fires() {
    let src = "\
fn sweep(table: &std::sync::RwLock<Table>) {
    for k in table.read().unwrap().stale_keys() {
        table.write().unwrap().remove(&k);
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lock-guard-liveness"), vec![2]);
}

/// Writing a *different* lock inside the guarded body is fine.
#[test]
fn lock_guard_distinct_locks_is_clean() {
    let src = "\
fn cross(a: &std::sync::RwLock<Table>, b: &std::sync::RwLock<Table>) {
    if let Some(v) = a.read().unwrap().peek() {
        b.write().unwrap().push(v);
    }
}
";
    assert_clean(&lint(NEUTRAL, src));
}

#[test]
fn lock_guard_suppression_records_allow() {
    let src = "\
fn lookup(map: &std::sync::RwLock<Table>, k: u32) -> u32 {
    // lint:allow(lock-guard-liveness) -- fixture: deadlock shape kept on purpose
    if let Some(v) = map.read().unwrap().get(&k) {
        *v
    } else {
        map.write().unwrap().insert(k, 0)
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "lock-guard-liveness");
    assert!(a.allows[0].reason.starts_with("fixture"));
}

// ---- panic-path -------------------------------------------------------

#[test]
fn panic_path_flags_unwrap_expect_macros_and_indexing() {
    let src = "\
fn handle(req: &[u8], table: &Table) -> u32 {
    let head = req[0];
    let parsed = parse(req).unwrap();
    let row = table.find(parsed).expect(\"present\");
    if head == 0 {
        panic!(\"empty request\");
    }
    match row {
        Row::Data(v) => v,
        Row::Hole => unreachable!(),
    }
}
";
    let a = lint(SERVING, src);
    let lines = rule_lines(&a, "panic-path");
    assert_eq!(lines, vec![2, 3, 4, 6, 10], "findings: {:?}", a.findings);
}

/// The same source on a non-serving file produces nothing: panic-path
/// is scoped to the wire/serve/parse/monitor files.
#[test]
fn panic_path_is_scoped_to_serving_files() {
    let src = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n";
    assert!(!rule_lines(&lint(SERVING, src), "panic-path").is_empty());
    assert_clean(&lint(NEUTRAL, src));
}

/// `.lock().expect(..)` / `.read().expect(..)` propagate an existing
/// poison panic rather than creating a new path — exempt.
#[test]
fn panic_path_lock_poison_expect_is_exempt() {
    let src = "\
fn snapshot(state: &std::sync::Mutex<State>) -> State {
    state.lock().expect(\"poisoned\").clone()
}
fn view(state: &std::sync::RwLock<State>) -> State {
    state.read().expect(\"poisoned\").clone()
}
";
    assert_clean(&lint(SERVING, src));
}

/// Attributes, `vec![..]`, slice types, and array literals all contain
/// `[` without being indexing.
#[test]
fn panic_path_indexing_heuristic_excludes_non_indexing_brackets() {
    let src = "\
#[derive(Debug)]
struct Frame {
    payload: Vec<u8>,
}
fn build() -> Vec<u8> {
    let header: [u8; 2] = [0x52, 0x46];
    let mut out: Vec<u8> = vec![header.len() as u8];
    out.extend_from_slice(&header);
    out
}
fn read(buf: &mut [u8]) -> [u8; 2] {
    let _ = buf.len();
    return [0, 1];
}
";
    let a = lint(SERVING, src);
    assert!(rule_lines(&a, "panic-path").is_empty(), "{:?}", a.findings);
}

/// `#[cfg(test)]` spans are exempt from every rule.
#[test]
fn rules_skip_cfg_test_spans() {
    let src = "\
fn serve(b: &[u8]) -> usize {
    b.len()
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(v[0], parse(&v).unwrap());
        let _ = v.len() as u16;
    }
}
";
    assert_clean(&lint(SERVING, src));
}

/// Panic-looking text inside string literals is not code; the lexer
/// must keep it out of the token stream.
#[test]
fn panic_path_ignores_strings_and_comments() {
    let src = "\
fn describe() -> &'static str {
    // the old code called table.get(k).unwrap() here
    \"refusing to unwrap() or panic!() in serving paths\"
}
";
    assert_clean(&lint(SERVING, src));
}

#[test]
fn panic_path_trailing_and_own_line_suppressions() {
    let src = "\
fn handle(req: &[u8]) -> u8 {
    let head = req[0]; // lint:allow(panic-path) -- fixture: trailing form
    // lint:allow(panic-path) -- fixture: own-line form targets the next line
    let tail = req[1];
    head + tail
}
";
    let a = lint(SERVING, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 2);
    assert_eq!(a.allows[0].line, 2);
    assert_eq!(a.allows[1].line, 3);
}

// ---- lossy-cast -------------------------------------------------------

/// The exact PR 5 shape: a length collapsed to `u32` with no bounds
/// evidence in the enclosing function.
#[test]
fn lossy_cast_pr5_len_as_u32_fires() {
    let src = "\
fn next_id(nodes: &[Node]) -> u32 {
    nodes.len() as u32
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lossy-cast"), vec![2]);
}

/// `try_from` in the same function is bounds evidence: the author
/// visibly confronted the overflow case.
#[test]
fn lossy_cast_try_from_evidence_is_clean() {
    let src = "\
fn next_id(nodes: &[Node]) -> u32 {
    let n = u32::try_from(nodes.len()).expect(\"node ids fit u32\");
    n as u32
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// Comparing against `<target>::MAX` in the same function also counts.
#[test]
fn lossy_cast_max_comparison_evidence_is_clean() {
    let src = "\
fn code(card: usize) -> u16 {
    assert!(card <= usize::from(u16::MAX));
    card as u16
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// Evidence is per-function: a `try_from` in one function does not
/// launder a bare cast in its neighbor.
#[test]
fn lossy_cast_evidence_does_not_leak_across_functions() {
    let src = "\
fn checked(n: usize) -> u32 {
    u32::try_from(n).expect(\"fits\")
}
fn unchecked(n: usize) -> u32 {
    n as u32
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lossy-cast"), vec![5]);
}

/// Literal sources that fit the target are fine; ones that don't, fire.
#[test]
fn lossy_cast_literal_fit_is_radix_aware() {
    let src = "\
fn lits() -> (u8, u8, u8) {
    (255 as u8, 0xFF as u8, 0x1_00 as u8)
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lossy-cast"), vec![2]);
}

/// Widening and same-width casts are not narrowing.
#[test]
fn lossy_cast_ignores_widening() {
    let src = "\
fn widen(x: u16) -> (u64, usize) {
    (x as u64, x as usize)
}
";
    assert_clean(&lint(NEUTRAL, src));
}

#[test]
fn lossy_cast_suppression_records_allow() {
    let src = "\
fn sample(draw: u64) -> u32 {
    (draw >> 32) as u32 // lint:allow(lossy-cast) -- fixture: high bits are the sample
}
";
    let a = lint(NEUTRAL, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "lossy-cast");
}

// ---- strict-parse -----------------------------------------------------

/// Destructuring two members without rejecting unknowns silently
/// accepts misspelled fields on the wire.
#[test]
fn strict_parse_two_members_without_reject_fires() {
    let src = "\
fn edit_from_json(pairs: &Obj) -> Result<Edit, String> {
    let row = pairs.get(\"row\").ok_or(\"missing row\")?;
    let score = pairs.get(\"score\").ok_or(\"missing score\")?;
    Ok(Edit::new(row, score))
}
";
    let a = lint(SERVING, src);
    assert_eq!(rule_lines(&a, "strict-parse"), vec![1]);
}

#[test]
fn strict_parse_reject_unknown_call_is_clean() {
    let src = "\
fn edit_from_json(pairs: &Obj) -> Result<Edit, String> {
    reject_unknown_members(pairs, &[\"row\", \"score\"], \"edit\")?;
    let row = pairs.get(\"row\").ok_or(\"missing row\")?;
    let score = pairs.get(\"score\").ok_or(\"missing score\")?;
    Ok(Edit::new(row, score))
}
";
    assert_clean(&lint(SERVING, src));
}

/// One member is a lookup, not a destructure; and the rule is scoped
/// to wire-facing files.
#[test]
fn strict_parse_scope_and_single_member() {
    let single = "\
fn kind(pairs: &Obj) -> Option<&Value> {
    pairs.get(\"kind\")
}
";
    assert_clean(&lint(SERVING, single));

    let two = "\
fn pair(pairs: &Obj) -> (Option<&Value>, Option<&Value>) {
    (pairs.get(\"a\"), pairs.get(\"b\"))
}
";
    assert_clean(&lint(NEUTRAL, two));
}

// ---- offline-deps -----------------------------------------------------

fn lint_manifest(src: &str) -> Vec<rankfair_lint::Finding> {
    let mut out = Vec::new();
    manifest::offline_deps("crates/demo/Cargo.toml", src, &mut out);
    out
}

#[test]
fn offline_deps_registry_dep_fires() {
    let findings = lint_manifest("[package]\nname = \"demo\"\n\n[dependencies]\nserde = \"1.0\"\n");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "offline-deps");
    assert_eq!(findings[0].line, 5);
}

#[test]
fn offline_deps_path_and_workspace_deps_are_clean() {
    let findings = lint_manifest(
        "[dependencies]\n\
         rankfair_core = { path = \"../core\" }\n\
         rankfair_json = { workspace = true }\n\
         \n\
         [dev-dependencies]\n\
         rankfair_synth = { path = \"../synth\" }\n",
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn offline_deps_table_form_needs_path() {
    let bad = lint_manifest("[dependencies.serde]\nversion = \"1.0\"\n");
    assert_eq!(bad.len(), 1);
    let good = lint_manifest("[dependencies.rankfair_core]\npath = \"../core\"\n");
    assert!(good.is_empty(), "{good:?}");
}

// ---- suppression meta-rules -------------------------------------------

#[test]
fn allow_without_reason_is_a_finding() {
    let src = "\
fn handle(req: &[u8]) -> u8 {
    req[0] // lint:allow(panic-path)
}
";
    let a = lint(SERVING, src);
    assert_eq!(rule_lines(&a, "allow-missing-reason"), vec![2]);
    // The reasonless allow suppresses nothing: the finding survives.
    assert_eq!(rule_lines(&a, "panic-path"), vec![2]);
    assert!(a.allows.is_empty());
}

#[test]
fn allow_naming_unknown_or_meta_rule_is_a_finding() {
    let src = "\
fn f() {
    let _ = 0; // lint:allow(bogus-rule) -- typo'd rule id
    let _ = 1; // lint:allow(allow-unused) -- meta rules cannot be suppressed
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "allow-unknown-rule"), vec![2, 3]);
}

#[test]
fn allow_that_suppresses_nothing_is_a_finding() {
    let src = "\
fn f(n: u64) -> u64 {
    n + 1 // lint:allow(lossy-cast) -- stale: the cast this covered was removed
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "allow-unused"), vec![2]);
    assert!(a.allows.is_empty());
}

/// Doc comments *describing* the syntax are prose, not directives.
#[test]
fn doc_comment_mentioning_allow_syntax_is_ignored() {
    let src = "\
/// Suppress with `lint:allow(panic-path) -- reason`.
fn f() {}
";
    assert_clean(&lint(NEUTRAL, src));
}

// ---- interprocedural fixtures -----------------------------------------

use rankfair_lint::analyze_workspace;
use std::collections::BTreeMap;

/// Multi-file fixture driver: a workspace analysis over in-memory
/// `(path, source)` pairs with an open crate-dependency map.
fn lint_ws(files: &[(&str, &str)]) -> Analysis {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(f, s)| (f.to_string(), s.to_string()))
        .collect();
    let wa = analyze_workspace(&owned, &Config::default(), &BTreeMap::new());
    Analysis {
        findings: wa.findings,
        allows: wa.allows,
    }
}

// ---- panic-reachability -----------------------------------------------

/// A panic reachable only through two call hops, crossing a crate
/// boundary: the serving entry calls into core, which calls deeper
/// into core, where the `.unwrap()` lives. The finding lands on the
/// panic site and carries the witness chain.
#[test]
fn panic_reachability_two_hops_fires() {
    let serving = "\
pub fn entry(n: u32) -> u32 {
    first_hop(n)
}
";
    let neutral = "\
pub fn first_hop(n: u32) -> u32 {
    second_hop(n)
}
fn second_hop(n: u32) -> u32 {
    n.checked_add(1).unwrap()
}
";
    let a = lint_ws(&[(SERVING, serving), (NEUTRAL, neutral)]);
    let hits: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect();
    assert_eq!(hits.len(), 1, "findings: {:?}", a.findings);
    assert_eq!(hits[0].file, NEUTRAL);
    assert_eq!(hits[0].line, 5);
    assert!(
        hits[0]
            .message
            .contains("service::entry → core::first_hop → core::second_hop"),
        "chain missing: {}",
        hits[0].message
    );
}

/// A panic in a function nothing on the serving path calls stays a
/// non-finding — reachability, not file lists, decides.
#[test]
fn panic_reachability_unreached_fn_is_clean() {
    let serving = "\
pub fn entry(x: &External) -> u32 {
    x.process_stuff()
}
";
    let neutral = "\
fn lurking() {
    panic!(\"boom\");
}
";
    let a = lint_ws(&[(SERVING, serving), (NEUTRAL, neutral)]);
    assert!(rule_lines(&a, "panic-reachability").is_empty());
}

/// The two documented exemptions hold transitively: lock-poison
/// `.expect(..)` and checked-narrowing `try_from(..).expect(..)` in a
/// reached function are not findings.
#[test]
fn panic_reachability_poison_and_try_from_exempt() {
    let serving = "\
pub fn entry(n: usize, m: &std::sync::Mutex<u32>) -> u32 {
    first_hop(n, m)
}
";
    let neutral = "\
pub fn first_hop(n: usize, m: &std::sync::Mutex<u32>) -> u32 {
    let v = u32::try_from(n).expect(\"bounded by caller\");
    let g = m.lock().expect(\"poisoned\");
    v + *g
}
";
    let a = lint_ws(&[(SERVING, serving), (NEUTRAL, neutral)]);
    assert_clean(&a);
}

/// Suppressing a reachable panic records the allow.
#[test]
fn panic_reachability_suppression_records_allow() {
    let serving = "\
pub fn entry(n: u32) -> u32 {
    deep(n)
}
";
    let neutral = "\
pub fn deep(n: u32) -> u32 {
    // lint:allow(panic-reachability) -- fixture: invariant documented at the call site
    n.checked_add(1).unwrap()
}
";
    let a = lint_ws(&[(SERVING, serving), (NEUTRAL, neutral)]);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "panic-reachability");
}

// ---- lock-order-cycle -------------------------------------------------

/// The seeded two-lock cycle: one fn takes `a` then `b`, another takes
/// `b` then `a`. One finding, anchored at the first edge site.
#[test]
fn lock_order_two_lock_cycle_fires() {
    let src = "\
fn ab(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let ga = a.lock().expect(\"a\");
    let gb = b.lock().expect(\"b\");
    drop(gb);
    drop(ga);
}
fn ba(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let gb = b.lock().expect(\"b\");
    let ga = a.lock().expect(\"a\");
    drop(ga);
    drop(gb);
}
";
    let a = lint(NEUTRAL, src);
    let lines = rule_lines(&a, "lock-order-cycle");
    assert_eq!(lines, vec![3], "findings: {:?}", a.findings);
    let f = a
        .findings
        .iter()
        .find(|f| f.rule == "lock-order-cycle")
        .unwrap();
    assert!(f.message.contains("`a`") && f.message.contains("`b`"));
}

/// The exact session-lane shape, inverted: `submit` holds `dispatch`
/// and takes `lane.state`; a second path holds `lane.state` and takes
/// `dispatch`. Reintroducing this ordering must fail the lint.
#[test]
fn lock_order_session_lane_shape_fires() {
    let src = "\
impl Exec {
    fn submit(&self) {
        let d = self.dispatch.lock().expect(\"dispatch lock\");
        let st = self.lane.state.lock().expect(\"lane lock\");
        drop(st);
        drop(d);
    }
    fn reap(&self) {
        let st = self.lane.state.lock().expect(\"lane lock\");
        let d = self.dispatch.lock().expect(\"dispatch lock\");
        drop(d);
        drop(st);
    }
}
";
    let a = lint(NEUTRAL, src);
    let f = a
        .findings
        .iter()
        .find(|f| f.rule == "lock-order-cycle")
        .unwrap_or_else(|| panic!("no cycle finding: {:?}", a.findings));
    assert!(f.message.contains("`dispatch`") && f.message.contains("`lane.state`"));
}

/// A consistent acquisition order everywhere is clean.
#[test]
fn lock_order_consistent_order_is_clean() {
    let src = "\
fn one(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let ga = a.lock().expect(\"a\");
    let gb = b.lock().expect(\"b\");
    drop(gb);
    drop(ga);
}
fn two(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let ga = a.lock().expect(\"a\");
    let gb = b.lock().expect(\"b\");
    drop(gb);
    drop(ga);
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// An explicit `drop(guard)` before the second acquisition removes the
/// edge — the register-then-evict shape in the service registry.
#[test]
fn lock_order_drop_before_second_lock_is_clean() {
    let src = "\
fn seq(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let ga = a.lock().expect(\"a\");
    drop(ga);
    let gb = b.lock().expect(\"b\");
    drop(gb);
}
fn rev(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let gb = b.lock().expect(\"b\");
    let ga = a.lock().expect(\"a\");
    drop(ga);
    drop(gb);
}
";
    assert_clean(&lint(NEUTRAL, src));
}

/// Re-acquiring a lock whose guard is still bound is self-deadlock.
#[test]
fn lock_order_reentrant_acquisition_fires() {
    let src = "\
fn twice(m: &std::sync::Mutex<u32>) {
    let first = m.lock().expect(\"m\");
    let second = m.lock().expect(\"m\");
    drop(second);
    drop(first);
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lock-order-cycle"), vec![3]);
}

/// A callee that re-takes a lock the caller still holds is flagged
/// through the call graph.
#[test]
fn lock_order_reentrant_via_callee_fires() {
    let src = "\
impl Store {
    fn outer(&self) {
        let g = self.table.lock().expect(\"table\");
        let n = *g;
        self.inner(n);
        drop(g);
    }
    fn inner(&self, n: u32) {
        *self.table.lock().expect(\"table\") += n;
    }
}
";
    let a = lint(NEUTRAL, src);
    assert_eq!(rule_lines(&a, "lock-order-cycle"), vec![5]);
}

/// Suppressing the cycle at its anchor line records the allow.
#[test]
fn lock_order_suppression_records_allow() {
    let src = "\
fn ab(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let ga = a.lock().expect(\"a\");
    // lint:allow(lock-order-cycle) -- fixture: demonstrating suppression
    let gb = b.lock().expect(\"b\");
    drop(gb);
    drop(ga);
}
fn ba(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let gb = b.lock().expect(\"b\");
    let ga = a.lock().expect(\"a\");
    drop(ga);
    drop(gb);
}
";
    let a = lint(NEUTRAL, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "lock-order-cycle");
}

// ---- guard-across-blocking --------------------------------------------

/// A guard held across a channel `recv` on a serving path.
#[test]
fn guard_across_blocking_recv_fires() {
    let src = "\
fn pump(state: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    let g = state.lock().expect(\"state lock\");
    let _ = rx.recv();
    drop(g);
}
";
    let a = lint(SERVING, src);
    assert_eq!(rule_lines(&a, "guard-across-blocking"), vec![3]);
}

/// Dropping the guard before blocking is clean.
#[test]
fn guard_across_blocking_drop_first_is_clean() {
    let src = "\
fn pump(state: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    let g = state.lock().expect(\"state lock\");
    drop(g);
    let _ = rx.recv();
}
";
    assert_clean(&lint(SERVING, src));
}

/// The seeded condvar shape: waiting while a *second* guard is held.
/// The guard handed to `wait` is the correct protocol and exempt; the
/// outer guard is the hazard.
#[test]
fn guard_across_blocking_wait_under_second_guard_fires() {
    let src = "\
fn gate(
    order: &std::sync::Mutex<u32>,
    state: &std::sync::Mutex<bool>,
    turned: &std::sync::Condvar,
) {
    let outer = order.lock().expect(\"order lock\");
    let st = state.lock().expect(\"state lock\");
    let _ = turned.wait(st);
    drop(outer);
}
";
    let a = lint(SERVING, src);
    let hits: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == "guard-across-blocking")
        .collect();
    assert_eq!(hits.len(), 1, "findings: {:?}", a.findings);
    assert_eq!(hits[0].line, 8);
    assert!(hits[0].message.contains("`order`"));
}

/// The correct condvar protocol — only the waited-on guard is held —
/// is clean. This is the session-lane `Claim::wait` shape.
#[test]
fn guard_across_blocking_condvar_protocol_is_clean() {
    let src = "\
fn wait_turn(state: &std::sync::Mutex<bool>, turned: &std::sync::Condvar) {
    let st = state.lock().expect(\"state lock\");
    let _ = turned.wait(st);
}
";
    assert_clean(&lint(SERVING, src));
}

/// A guard held across a *call* to a function that blocks internally
/// is flagged at the call site, naming the callee and its blocking
/// construct.
#[test]
fn guard_across_blocking_via_callee_fires() {
    let src = "\
fn entry(m: &std::sync::Mutex<u32>) {
    let g = m.lock().expect(\"m lock\");
    drain_queue();
    drop(g);
}
fn drain_queue() {
    let (_tx, rx) = std::sync::mpsc::channel::<u32>();
    let _ = rx.recv();
}
";
    let a = lint(SERVING, src);
    let hits: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == "guard-across-blocking")
        .collect();
    assert_eq!(hits.len(), 1, "findings: {:?}", a.findings);
    assert_eq!(hits[0].line, 3);
    assert!(hits[0].message.contains("drain_queue"));
}

/// Blocking with no guard held, on a serving path, is clean.
#[test]
fn guard_across_blocking_without_guard_is_clean() {
    let src = "\
fn pump(rx: &std::sync::mpsc::Receiver<u32>) {
    let _ = rx.recv();
}
";
    assert_clean(&lint(SERVING, src));
}

/// Suppression at the blocking line records the allow.
#[test]
fn guard_across_blocking_suppression_records_allow() {
    let src = "\
fn pump(state: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    let g = state.lock().expect(\"state lock\");
    // lint:allow(guard-across-blocking) -- fixture: deliberate single-popper pattern
    let _ = rx.recv();
    drop(g);
}
";
    let a = lint(SERVING, src);
    assert_clean(&a);
    assert_eq!(a.allows.len(), 1);
    assert_eq!(a.allows[0].rule, "guard-across-blocking");
}

/// `tests/` directory files get the two concurrency rules — a wedged
/// test hangs CI — but none of the panic or cast rules.
#[test]
fn tests_dir_gets_concurrency_rules_only() {
    let src = "\
fn stress(m: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    let g = m.lock().unwrap();
    let _ = rx.recv();
    drop(g);
    let n = rx.iter().count() as u32;
    assert!(n < u32::MAX);
}
";
    let a = lint("crates/service/tests/stress.rs", src);
    assert_eq!(rule_lines(&a, "guard-across-blocking"), vec![3]);
    assert!(rule_lines(&a, "panic-path").is_empty());
    assert!(rule_lines(&a, "panic-reachability").is_empty());
    assert!(rule_lines(&a, "lossy-cast").is_empty());
}

// ---- serving-path-config ----------------------------------------------

/// The drift meta-check: a configured file that was not scanned, and a
/// new service source file missing from the configuration, both fail.
#[test]
fn serving_path_config_detects_drift() {
    let cfg = Config::default();
    let scanned: Vec<String> = cfg.panic_path_files.clone();
    assert!(rankfair_lint::serving_path_config(&cfg, &scanned).is_empty());

    let mut missing = scanned.clone();
    let dropped = missing.remove(0);
    let out = rankfair_lint::serving_path_config(&cfg, &missing);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "serving-path-config");
    assert!(out[0].message.contains(&dropped));

    let mut extra = scanned.clone();
    extra.push("crates/service/src/metrics.rs".to_string());
    let out = rankfair_lint::serving_path_config(&cfg, &extra);
    assert_eq!(out.len(), 1);
    assert!(out[0].message.contains("metrics.rs"));

    // Nested modules and test files under the service crate are not
    // serving entry files and must not trip the check.
    let mut nested = scanned.clone();
    nested.push("crates/service/src/wire/frames.rs".to_string());
    nested.push("crates/service/tests/robustness.rs".to_string());
    assert!(rankfair_lint::serving_path_config(&cfg, &nested).is_empty());
}
