//! `rankfair-lint` — CLI driver for [`rankfair_lint`].
//!
//! ```text
//! cargo run -p rankfair-lint -- check [--root DIR] [--format text|json|github]
//!                                     [--list-allows] [--dump-callgraph]
//! ```
//!
//! `--format github` prints one `::error file=…,line=…` workflow
//! command per finding, so CI runs annotate the offending lines in the
//! PR diff. `--dump-callgraph` prints the deterministic call-graph
//! listing the interprocedural rules ran on, one function per line.
//!
//! Exit codes: `0` clean (or listing allows / dumping the graph over a
//! clean tree), `1` unsuppressed findings, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

struct Opts {
    root: PathBuf,
    format: Format,
    list_allows: bool,
    dump_callgraph: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rankfair-lint check [--root DIR] [--format text|json|github] [--list-allows]\n\
         \x20                          [--dump-callgraph]\n\
         \n\
         Lints every crates/*/src, crates/*/tests, src/ and tests/ .rs file plus all\n\
         Cargo.toml manifests.\n\
         Rules: {}\n\
         Suppress with `// lint:allow(<rule>) -- <reason>` (reason mandatory; every\n\
         allow must be ledgered in {}).",
        rankfair_lint::RULES.join(", "),
        rankfair_lint::LEDGER_FILE,
    );
    ExitCode::from(2)
}

fn parse_opts() -> Result<Opts, ExitCode> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        _ => return Err(usage()),
    }
    let mut opts = Opts {
        root: PathBuf::from("."),
        format: Format::Text,
        list_allows: false,
        dump_callgraph: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => opts.format = Format::Json,
                Some("text") => opts.format = Format::Text,
                Some("github") => opts.format = Format::Github,
                _ => return Err(usage()),
            },
            "--list-allows" => opts.list_allows = true,
            "--dump-callgraph" => opts.dump_callgraph = true,
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

/// Escapes a value for a GitHub Actions workflow-command *message*
/// position (`%`, CR, LF are the command syntax's reserved bytes).
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command *property* value (also `:` and `,`).
fn gh_escape_prop(s: &str) -> String {
    gh_escape(s).replace(':', "%3A").replace(',', "%2C")
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "rankfair-lint: {} has no Cargo.toml — pass the workspace root via --root",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let (report, graph) = match rankfair_lint::run_with_graph(&opts.root) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("rankfair-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Buffer the report and ignore write errors: `check | head` closing
    // the pipe early must not panic a tool whose job is panic-freedom.
    let mut out = String::new();
    {
        use std::fmt::Write;
        if opts.dump_callgraph {
            out.push_str(&rankfair_lint::callgraph::dump(&graph));
        } else if opts.list_allows {
            for a in &report.allows {
                let _ = writeln!(out, "{}:{}  {}  — {}", a.file, a.line, a.rule, a.reason);
            }
            let _ = writeln!(out, "{} allow(s)", report.allows.len());
        } else {
            match opts.format {
                Format::Json => {
                    let _ = writeln!(out, "{}", rankfair_lint::report_json(&report).render());
                }
                Format::Github => {
                    for f in &report.findings {
                        let _ = writeln!(
                            out,
                            "::error file={},line={},title=rankfair-lint({})::{}",
                            gh_escape_prop(&f.file),
                            f.line,
                            f.rule,
                            gh_escape(&f.message)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} file(s), {} manifest(s) scanned: {} finding(s), {} allow(s)",
                        report.files_scanned,
                        report.manifests_scanned,
                        report.findings.len(),
                        report.allows.len()
                    );
                }
                Format::Text => {
                    for f in &report.findings {
                        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                        if !f.excerpt.is_empty() {
                            let _ = writeln!(out, "    | {}", f.excerpt);
                        }
                    }
                    let _ = writeln!(
                        out,
                        "{} file(s), {} manifest(s) scanned: {} finding(s), {} allow(s)",
                        report.files_scanned,
                        report.manifests_scanned,
                        report.findings.len(),
                        report.allows.len()
                    );
                }
            }
        }
    }
    {
        use std::io::Write;
        let _ = std::io::stdout().write_all(out.as_bytes());
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
