//! `rankfair-lint` — CLI driver for [`rankfair_lint`].
//!
//! ```text
//! cargo run -p rankfair-lint -- check [--root DIR] [--format text|json] [--list-allows]
//! ```
//!
//! Exit codes: `0` clean (or listing allows over a clean tree), `1`
//! unsuppressed findings, `2` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: bool,
    list_allows: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rankfair-lint check [--root DIR] [--format text|json] [--list-allows]\n\
         \n\
         Lints every crates/*/src and src/ .rs file plus all Cargo.toml manifests.\n\
         Rules: {}\n\
         Suppress with `// lint:allow(<rule>) -- <reason>` (reason mandatory; every\n\
         allow must be ledgered in {}).",
        rankfair_lint::RULES.join(", "),
        rankfair_lint::LEDGER_FILE,
    );
    ExitCode::from(2)
}

fn parse_opts() -> Result<Opts, ExitCode> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        _ => return Err(usage()),
    }
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        list_allows: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                _ => return Err(usage()),
            },
            "--list-allows" => opts.list_allows = true,
            _ => return Err(usage()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "rankfair-lint: {} has no Cargo.toml — pass the workspace root via --root",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let report = match rankfair_lint::run(&opts.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("rankfair-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Buffer the report and ignore write errors: `check | head` closing
    // the pipe early must not panic a tool whose job is panic-freedom.
    let mut out = String::new();
    {
        use std::fmt::Write;
        if opts.list_allows {
            for a in &report.allows {
                let _ = writeln!(out, "{}:{}  {}  — {}", a.file, a.line, a.rule, a.reason);
            }
            let _ = writeln!(out, "{} allow(s)", report.allows.len());
        } else if opts.json {
            let _ = writeln!(out, "{}", rankfair_lint::report_json(&report).render());
        } else {
            for f in &report.findings {
                let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                if !f.excerpt.is_empty() {
                    let _ = writeln!(out, "    | {}", f.excerpt);
                }
            }
            let _ = writeln!(
                out,
                "{} file(s), {} manifest(s) scanned: {} finding(s), {} allow(s)",
                report.files_scanned,
                report.manifests_scanned,
                report.findings.len(),
                report.allows.len()
            );
        }
    }
    {
        use std::io::Write;
        let _ = std::io::stdout().write_all(out.as_bytes());
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
