//! Workspace-wide call graph over the items from [`crate::parse`].
//!
//! Name resolution is a heuristic, not rustc: a call resolves by its
//! bare name, scoped by what the workspace actually defines —
//!
//! * `self.name(..)` inside `impl T` prefers `T`'s own method, so a
//!   method name shadowed across types stays with its receiver;
//! * `Qual::name(..)` resolves through the qualifier: an impl type
//!   first, then a module, then a crate; a qualifier the workspace
//!   does not define (`u32::try_from`, `std::thread::scope`) resolves
//!   to nothing;
//! * a bare `name(..)` prefers the same module, then the same crate,
//!   then any crate visible through the manifest dependency graph;
//! * `.name(..)` with an unknown receiver resolves to **every** visible
//!   method of that name — over-approximation is the conservative
//!   direction for reachability;
//! * macros (`name!(..)`) and keywords are never calls.
//!
//! Calls that resolve to nothing are kept as *unresolved* edges: the
//! interprocedural rules treat them conservatively (reachability stops,
//! and the per-file intraprocedural rules remain the fallback there).
//! Test functions are only callable from test functions, so fixtures
//! cannot launder a serving path.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parse::{parse_file, FnDef};

/// One lexed + parsed source file in the workspace.
pub struct Unit {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Crate directory name (`core`, `service`, … or `root`).
    pub crate_name: String,
    /// `true` for files under a `tests/` directory (integration tests):
    /// only the concurrency rules look at them, and their functions are
    /// never serving entry points.
    pub test_dir: bool,
    /// The token stream.
    pub lexed: Lexed,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Bare callee name.
    pub name: String,
    /// Last path segment before `::`, if the call was qualified.
    pub qualifier: Option<String>,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// `.name(..)` method-call syntax?
    pub method: bool,
    /// Receiver is literally `self`?
    pub recv_self: bool,
    /// Resolved target fn indices (empty = unresolved/external).
    pub targets: Vec<usize>,
}

/// The workspace view the interprocedural rules run on.
pub struct Workspace {
    /// All files, in deterministic (sorted-path) order.
    pub units: Vec<Unit>,
    /// Every function definition; `FnDef::unit` indexes [`Workspace::units`].
    pub fns: Vec<FnDef>,
    /// Per function: its call sites with resolved targets.
    pub calls: Vec<Vec<Call>>,
    /// Per function: body spans of directly nested fn definitions
    /// (token ranges to skip when scanning the parent's body).
    pub nested: Vec<Vec<(usize, usize)>>,
}

/// Method names the std prelude owns for practical purposes. A
/// `.name(..)` call on an *unknown* receiver with one of these names is
/// left unresolved rather than over-approximated onto every same-named
/// workspace method — `cv.wait(st)` must not resolve to a lane-claim
/// `wait`, nor `map.get(k)` to a store accessor.
const AMBIENT_METHODS: &[&str] = &[
    "as_bytes",
    "as_str",
    "clear",
    "clone",
    "cmp",
    "contains",
    "contains_key",
    "default",
    "drain",
    "ends_with",
    "entry",
    "eq",
    "extend",
    "flush",
    "fmt",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "lock",
    "map",
    "new",
    "next",
    "notify_all",
    "notify_one",
    "parse",
    "pop",
    "push",
    "read",
    "recv",
    "remove",
    "replace",
    "retain",
    "send",
    "sort",
    "sort_by",
    "spawn",
    "split",
    "starts_with",
    "take",
    "to_string",
    "trim",
    "wait",
    "write",
];

const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// Builds the graph. `crate_deps` maps a crate to the crates it may
/// call (its manifest `path` dependencies); a crate absent from the map
/// — synthetic test fixtures — sees everything. Visibility is closed
/// transitively, so re-exported items resolve across one hop.
pub fn build(units: Vec<Unit>, crate_deps: &BTreeMap<String, Vec<String>>) -> Workspace {
    let mut fns: Vec<FnDef> = Vec::new();
    for (ui, unit) in units.iter().enumerate() {
        let mut defs = parse_file(&unit.crate_name, &unit.lexed.toks);
        for d in &mut defs {
            d.unit = ui;
        }
        fns.extend(defs);
    }

    let mut nested: Vec<Vec<(usize, usize)>> = vec![Vec::new(); fns.len()];
    for i in 0..fns.len() {
        for j in 0..fns.len() {
            if i != j && fns[i].unit == fns[j].unit && fns[i].contains(&fns[j]) {
                nested[i].push((fns[j].sig_start, fns[j].body.1));
            }
        }
    }

    let visible = transitive_deps(crate_deps);
    let index = NameIndex::build(&fns);
    let in_test_dir: Vec<bool> = fns.iter().map(|f| units[f.unit].test_dir).collect();
    let mut calls = Vec::with_capacity(fns.len());
    for (fi, f) in fns.iter().enumerate() {
        let toks = &units[f.unit].lexed.toks;
        let mut sites = extract_calls(toks, f.body.0 + 1, f.body.1, &nested[fi]);
        for c in &mut sites {
            c.targets = index.resolve(c, fi, f, &fns, &in_test_dir, &visible);
        }
        calls.push(sites);
    }

    Workspace {
        units,
        fns,
        calls,
        nested,
    }
}

/// Transitive closure of the manifest dependency edges, including the
/// crate itself.
fn transitive_deps(deps: &BTreeMap<String, Vec<String>>) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in deps.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        seen.insert(name.clone());
        queue.push_back(name);
        while let Some(cur) = queue.pop_front() {
            if let Some(next) = deps.get(cur) {
                for d in next {
                    if seen.insert(d.clone()) {
                        queue.push_back(d);
                    }
                }
            }
        }
        out.insert(name.clone(), seen);
    }
    out
}

struct NameIndex {
    /// Method name → fn indices (any impl/trait type).
    methods: BTreeMap<String, Vec<usize>>,
    /// `(type, method)` → fn indices.
    typed: BTreeMap<(String, String), Vec<usize>>,
    /// Free-fn name → fn indices.
    free: BTreeMap<String, Vec<usize>>,
    /// Module segments that exist anywhere in the workspace.
    modules: BTreeSet<String>,
}

impl NameIndex {
    fn build(fns: &[FnDef]) -> NameIndex {
        let mut ix = NameIndex {
            methods: BTreeMap::new(),
            typed: BTreeMap::new(),
            free: BTreeMap::new(),
            modules: BTreeSet::new(),
        };
        for (i, f) in fns.iter().enumerate() {
            match &f.impl_type {
                Some(t) => {
                    ix.methods.entry(f.name.clone()).or_default().push(i);
                    ix.typed
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                }
                None => ix.free.entry(f.name.clone()).or_default().push(i),
            }
            for m in &f.module {
                ix.modules.insert(m.clone());
            }
        }
        ix
    }

    fn resolve(
        &self,
        call: &Call,
        caller_ix: usize,
        caller: &FnDef,
        fns: &[FnDef],
        in_test_dir: &[bool],
        visible: &BTreeMap<String, BTreeSet<String>>,
    ) -> Vec<usize> {
        let caller_is_test = caller.is_test || in_test_dir[caller_ix];
        let keep = |ids: &[usize]| -> Vec<usize> {
            ids.iter()
                .copied()
                .filter(|&t| {
                    let tf = &fns[t];
                    // Test fns are callable only from test code.
                    if (tf.is_test || in_test_dir[t]) && !caller_is_test {
                        return false;
                    }
                    match visible.get(crate_of_def(caller)) {
                        Some(vis) => vis.contains(crate_of_def(tf)),
                        None => true,
                    }
                })
                .collect()
        };

        if call.method {
            if call.recv_self {
                if let Some(t) = &caller.impl_type {
                    let own = self
                        .typed
                        .get(&(t.clone(), call.name.clone()))
                        .map(|ids| keep(ids))
                        .unwrap_or_default();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            // Unknown receiver: every visible method of the name —
            // unless the name collides with the std prelude vocabulary
            // (`.get(..)`, `.wait(..)`, `.send(..)`, …), where the
            // receiver is almost always a std type and resolving into a
            // same-named workspace method would invent edges. Those
            // stay unresolved (conservative).
            if AMBIENT_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            return self
                .methods
                .get(&call.name)
                .map(|ids| keep(ids))
                .unwrap_or_default();
        }

        if let Some(q) = &call.qualifier {
            let q = if q == "Self" {
                match &caller.impl_type {
                    Some(t) => t.clone(),
                    None => return Vec::new(),
                }
            } else {
                q.clone()
            };
            if let Some(ids) = self.typed.get(&(q.clone(), call.name.clone())) {
                return keep(ids);
            }
            if self.modules.contains(&q) {
                if let Some(ids) = self.free.get(&call.name) {
                    let scoped: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&t| fns[t].module.last() == Some(&q))
                        .collect();
                    return keep(&scoped);
                }
            }
            // Crate-qualified (`rankfair_core::audit_fn(..)`).
            let crate_dir = q.strip_prefix("rankfair_").unwrap_or(&q);
            if let Some(ids) = self.free.get(&call.name) {
                let scoped: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&t| crate_of_def(&fns[t]) == crate_dir)
                    .collect();
                if !scoped.is_empty() {
                    return keep(&scoped);
                }
            }
            return Vec::new(); // `u32::try_from`, `std::mem::take`, …
        }

        // Bare call: same module, then same crate, then anything visible.
        let Some(ids) = self.free.get(&call.name) else {
            return Vec::new();
        };
        let same_module: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&t| fns[t].unit == caller.unit && fns[t].module == caller.module)
            .collect();
        let same_module = keep(&same_module);
        if !same_module.is_empty() {
            return same_module;
        }
        let same_crate: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&t| crate_of_def(&fns[t]) == crate_of_def(caller))
            .collect();
        let same_crate = keep(&same_crate);
        if !same_crate.is_empty() {
            return same_crate;
        }
        keep(ids)
    }
}

fn crate_of_def(f: &FnDef) -> &str {
    // The crate name is the first segment of the qualified name.
    f.qual.split("::").next().unwrap_or("")
}

/// Scans a body token range for call sites, skipping nested fn items.
fn extract_calls(toks: &[Tok], lo: usize, hi: usize, nested: &[(usize, usize)]) -> Vec<Call> {
    let mut out = Vec::new();
    let mut j = lo;
    while j < hi {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, ne)| *ns <= j && j <= *ne) {
            j = nend + 1;
            continue;
        }
        let t = &toks[j];
        if t.kind != TokKind::Ident
            || KEYWORDS.contains(&t.text.as_str())
            || !toks.get(j + 1).is_some_and(|n| n.is_punct('('))
        {
            j += 1;
            continue;
        }
        let method = j >= 1 && toks[j - 1].is_punct('.');
        let recv_self = method && j >= 2 && toks[j - 2].is_ident("self");
        let qualifier = if !method
            && j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokKind::Ident
        {
            Some(toks[j - 3].text.clone())
        } else {
            None
        };
        out.push(Call {
            name: t.text.clone(),
            qualifier,
            tok: j,
            line: t.line,
            method,
            recv_self,
            targets: Vec::new(),
        });
        j += 1;
    }
    out
}

/// BFS over resolved edges from `seeds`. Returns, per fn, whether it is
/// reachable and (for non-seeds) the `(caller fn, call line)` it was
/// first reached through — enough to rebuild a witness chain.
pub fn reachable(ws: &Workspace, seeds: &[usize]) -> (Vec<bool>, Vec<Option<(usize, u32)>>) {
    let mut seen = vec![false; ws.fns.len()];
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; ws.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if !seen[s] {
            seen[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(f) = queue.pop_front() {
        for call in &ws.calls[f] {
            for &t in &call.targets {
                if !seen[t] {
                    seen[t] = true;
                    parent[t] = Some((f, call.line));
                    queue.push_back(t);
                }
            }
        }
    }
    (seen, parent)
}

/// A witness call chain `entry → … → target`, rendered with qualified
/// names (truncated in the middle past five hops).
pub fn chain(ws: &Workspace, parent: &[Option<(usize, u32)>], target: usize) -> String {
    let mut hops = vec![target];
    let mut cur = target;
    while let Some((p, _)) = parent[cur] {
        hops.push(p);
        cur = p;
        if hops.len() > 64 {
            break; // defensive: parent chains from BFS are acyclic
        }
    }
    hops.reverse();
    let names: Vec<&str> = hops.iter().map(|&i| ws.fns[i].qual.as_str()).collect();
    if names.len() <= 5 {
        names.join(" → ")
    } else {
        format!(
            "{} → {} → … → {} → {}",
            names[0],
            names[1],
            names[names.len() - 2],
            names[names.len() - 1]
        )
    }
}

/// Deterministic text dump of the graph (`--dump-callgraph`): one line
/// per function, resolved callees sorted and deduplicated, unresolved
/// names prefixed with `?`.
pub fn dump(ws: &Workspace) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (fi, f) in ws.fns.iter().enumerate() {
        let mut resolved: BTreeSet<&str> = BTreeSet::new();
        let mut unresolved: BTreeSet<String> = BTreeSet::new();
        for c in &ws.calls[fi] {
            if c.targets.is_empty() {
                unresolved.insert(format!("?{}", c.name));
            } else {
                for &t in &c.targets {
                    resolved.insert(ws.fns[t].qual.as_str());
                }
            }
        }
        let mut rhs: Vec<String> = resolved.iter().map(|s| s.to_string()).collect();
        rhs.extend(unresolved);
        lines.push(format!(
            "{} [{}:{}]{} -> {}",
            f.qual,
            ws.units[f.unit].file,
            f.line,
            if f.is_test { " [test]" } else { "" },
            rhs.join(", ")
        ));
    }
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let units = files
            .iter()
            .map(|(path, src)| Unit {
                file: path.to_string(),
                crate_name: crate::crate_name_of(path),
                test_dir: crate::is_test_dir(path),
                lexed: lex(src),
            })
            .collect();
        build(units, &BTreeMap::new())
    }

    fn targets_of(ws: &Workspace, caller: &str, callee: &str) -> Vec<String> {
        let fi = ws
            .fns
            .iter()
            .position(|f| f.qual == caller)
            .unwrap_or_else(|| panic!("no fn {caller}"));
        let call = ws.calls[fi]
            .iter()
            .find(|c| c.name == callee)
            .unwrap_or_else(|| panic!("{caller} has no call to {callee}"));
        call.targets
            .iter()
            .map(|&t| ws.fns[t].qual.clone())
            .collect()
    }

    /// `self.helper()` stays with the receiver type even when another
    /// type defines a method of the same name.
    #[test]
    fn shadowed_method_names_resolve_by_receiver() {
        let src = "\
impl Alpha {
    fn run(&self) { self.helper(); }
    fn helper(&self) {}
}
impl Beta {
    fn helper(&self) {}
}
";
        let w = ws(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(
            targets_of(&w, "core::Alpha::run", "helper"),
            ["core::Alpha::helper"]
        );
    }

    /// A method call on an unknown receiver over-approximates to every
    /// visible method of the name.
    #[test]
    fn unknown_receiver_methods_are_conservative() {
        let src = "\
impl Alpha { fn helper(&self) {} }
impl Beta { fn helper(&self) {} }
fn free(x: &dyn Any) { x.helper(); }
";
        let w = ws(&[("crates/core/src/lib.rs", src)]);
        let mut t = targets_of(&w, "core::free", "helper");
        t.sort();
        assert_eq!(t, ["core::Alpha::helper", "core::Beta::helper"]);
    }

    /// External / std calls resolve to nothing and stay that way.
    #[test]
    fn unresolved_externals_stay_unresolved() {
        let src = "fn f(n: usize) -> u32 { u32::try_from(n).unwrap_or(0) }\n";
        let w = ws(&[("crates/core/src/lib.rs", src)]);
        let fi = w.fns.iter().position(|f| f.qual == "core::f").unwrap();
        let call = w.calls[fi].iter().find(|c| c.name == "try_from").unwrap();
        assert!(call.targets.is_empty());
        assert_eq!(call.qualifier.as_deref(), Some("u32"));
    }

    /// Bare calls prefer the same module over a same-named fn elsewhere.
    #[test]
    fn bare_calls_prefer_the_nearest_scope() {
        let src = "\
fn helper() {}
mod inner {
    fn helper() {}
    fn caller() { helper(); }
}
fn outer_caller() { helper(); }
";
        let w = ws(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(
            targets_of(&w, "core::inner::caller", "helper"),
            ["core::inner::helper"]
        );
        assert_eq!(
            targets_of(&w, "core::outer_caller", "helper"),
            ["core::helper"]
        );
    }

    /// Dependency direction gates cross-crate resolution: service may
    /// call into core, but core never resolves into service.
    #[test]
    fn manifest_deps_gate_visibility() {
        let core = "pub fn shared_name() {}\n";
        let service =
            "pub fn shared_name() {}\nfn caller() { other_name(); }\npub fn other_name() {}\n";
        let core_caller = "fn from_core() { unique_service_fn(); }\n";
        let service2 = "pub fn unique_service_fn() {}\n";
        let mut deps = BTreeMap::new();
        deps.insert("service".to_string(), vec!["core".to_string()]);
        deps.insert("core".to_string(), Vec::new());
        let units = vec![
            ("crates/core/src/lib.rs", core),
            ("crates/core/src/extra.rs", core_caller),
            ("crates/service/src/lib.rs", service),
            ("crates/service/src/extra.rs", service2),
        ]
        .into_iter()
        .map(|(path, src)| Unit {
            file: path.to_string(),
            crate_name: crate::crate_name_of(path),
            test_dir: false,
            lexed: lex(src),
        })
        .collect();
        let w = build(units, &deps);
        // core cannot see service's fn: unresolved.
        assert_eq!(
            targets_of(&w, "core::from_core", "unique_service_fn"),
            Vec::<String>::new()
        );
    }

    /// Reachability stops at unresolved calls and test fns.
    #[test]
    fn reachability_walks_resolved_edges_only() {
        let src = "\
fn entry() { middle(); external_thing(); }
fn middle() { leaf(); }
fn leaf() {}
fn orphan() {}
#[cfg(test)]
mod tests {
    fn fixture() { orphan_helper(); }
    fn orphan_helper() {}
}
";
        let w = ws(&[("crates/core/src/lib.rs", src)]);
        let entry = w.fns.iter().position(|f| f.qual == "core::entry").unwrap();
        let (seen, parent) = reachable(&w, &[entry]);
        let q = |name: &str| w.fns.iter().position(|f| f.qual == name).unwrap();
        assert!(seen[q("core::middle")] && seen[q("core::leaf")]);
        assert!(!seen[q("core::orphan")]);
        assert!(!seen[q("core::tests::fixture")]);
        assert_eq!(
            chain(&w, &parent, q("core::leaf")),
            "core::entry → core::middle → core::leaf"
        );
    }
}
