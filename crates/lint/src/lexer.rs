//! A hand-rolled Rust lexer, just deep enough for lexical lint rules.
//!
//! The rules in [`crate::rules`] reason about *significant tokens* —
//! identifiers, punctuation, literals — so the lexer's whole job is to
//! classify everything else out of the way without being fooled by the
//! places Rust source can smuggle code-looking text:
//!
//! * line comments and **nested** block comments (`/* /* */ */`);
//! * string literals with escapes (`"say \"hi\""`), byte strings, and
//!   **raw strings with arbitrary hash fences** (`r##"…"##`) whose
//!   contents may contain `unwrap(`, quotes, backslashes, anything;
//! * char literals (`'"'`, `'\\'`, `'\u{1f}'`) versus lifetimes
//!   (`'static`, `<'a>`) versus loop labels (`'outer:`);
//! * raw identifiers (`r#match`) versus raw strings (`r#"…"#`);
//! * numbers with radix prefixes, type suffixes, and the `0..n` range
//!   ambiguity (the `.` belongs to the range, not the number).
//!
//! Comments are not discarded: they come back as trivia so the
//! suppression layer can find `lint:allow(...)` markers, and the
//! `#[cfg(test)]` scanner marks every token inside test-only modules so
//! rules can skip them.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `self`, …). Raw
    /// identifiers (`r#match`) lex to their unprefixed name.
    Ident,
    /// A lifetime or loop label (`'a`, `'static`), without the quote.
    Lifetime,
    /// A numeric literal, radix prefix and suffix included (`0xDC00`,
    /// `1_000u32`).
    Num,
    /// A string literal (plain, byte, raw or raw-byte); `text` holds the
    /// raw contents between the quotes, escapes unprocessed.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation byte (`.`, `{`, `!`, …). Multi-byte operators
    /// arrive as consecutive tokens (`::` is two `:`).
    Punct,
}

/// One significant token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte on its line (the
    /// span plumbing `--format github` annotations and the item parser
    /// anchor on).
    pub col: u32,
    /// Whether the token sits inside a `#[cfg(test)]`-gated brace block.
    pub in_test: bool,
}

impl Tok {
    /// Is this the punctuation byte `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// One comment, kept for the suppression layer.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// `true` when nothing but whitespace precedes the comment on its
    /// line — such a comment annotates the *next* code line, a trailing
    /// one annotates its own.
    pub own_line: bool,
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    /// Byte index of the first byte of the current line, for columns.
    line_start: usize,
    /// Whether a significant token has been emitted on the current line
    /// (distinguishes own-line comments from trailing ones).
    line_has_code: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> u8 {
        self.b.get(self.i + off).copied().unwrap_or(0)
    }

    /// 1-based column of the current byte on the current line.
    fn col(&self) -> u32 {
        u32::try_from(self.i.saturating_sub(self.line_start))
            .unwrap_or(u32::MAX - 1)
            .saturating_add(1)
    }

    fn push(&mut self, kind: TokKind, text: String, at: (u32, u32)) {
        self.line_has_code = true;
        self.out.toks.push(Tok {
            kind,
            text,
            line: at.0,
            col: at.1,
            in_test: false,
        });
    }

    /// Advances past one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_start = self.i + 1;
            self.line_has_code = false;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => {
                    let at = (self.line, self.col());
                    // Non-ASCII bytes only occur inside strings/comments in
                    // valid Rust; emit whatever shows up here as opaque
                    // punctuation so offsets stay aligned.
                    let len = utf8_len(c);
                    let text = String::from_utf8_lossy(&self.b[self.i..self.i + len]).into_owned();
                    self.bump_n(len);
                    self.push(TokKind::Punct, text, at);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let own_line = !self.line_has_code;
        let start = self.i + 2;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.comments.push(Comment {
            line,
            text,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let own_line = !self.line_has_code;
        let start = self.i + 2;
        self.bump_n(2);
        let mut depth = 1usize;
        let mut end = self.b.len().saturating_sub(2);
        while self.i < self.b.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                if depth == 0 {
                    end = self.i;
                    self.bump_n(2);
                    break;
                }
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..end.max(start)]).into_owned();
        self.out.comments.push(Comment {
            line,
            text,
            own_line,
        });
    }

    /// A plain (escaped) string literal, opening quote at `self.i`.
    fn string(&mut self) {
        let at = (self.line, self.col());
        self.bump(); // opening quote
        let start = self.i;
        while self.i < self.b.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => break,
                _ => self.bump(),
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i.min(self.b.len())]).into_owned();
        if self.i < self.b.len() {
            self.bump(); // closing quote
        }
        self.push(TokKind::Str, text, at);
    }

    /// A raw string body: `self.i` sits on the opening quote, `hashes`
    /// fence characters follow the closing quote.
    fn raw_string(&mut self, hashes: usize) {
        let at = (self.line, self.col());
        self.bump(); // opening quote
        let start = self.i;
        let mut end = self.b.len();
        while self.i < self.b.len() {
            if self.peek(0) == b'"' && (1..=hashes).all(|k| self.peek(k) == b'#') {
                end = self.i;
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..end.max(start)]).into_owned();
        self.push(TokKind::Str, text, at);
    }

    /// `'` — a char literal, a lifetime, or a loop label.
    fn char_or_lifetime(&mut self) {
        let at = (self.line, self.col());
        let next = self.peek(1);
        if next == b'\\' {
            // Escaped char literal: skip the escape, find the close.
            self.bump_n(2); // ' and backslash
            self.bump(); // the escape selector (n, t, u, ', \, …)
            while self.i < self.b.len() && self.peek(0) != b'\'' {
                self.bump(); // \u{…} payloads
            }
            self.bump(); // closing quote
            self.push(TokKind::Char, String::new(), at);
        } else if is_ident_start(next) && self.peek(2) != b'\'' {
            // Lifetime or label: 'ident with no closing quote.
            self.bump(); // quote
            let start = self.i;
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.push(TokKind::Lifetime, text, at);
        } else {
            // Char literal, possibly multi-byte ('λ'): scan to the close.
            self.bump(); // quote
            while self.i < self.b.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump(); // closing quote
            self.push(TokKind::Char, String::new(), at);
        }
    }

    fn number(&mut self) {
        let at = (self.line, self.col());
        let start = self.i;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump_n(2);
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
            // A fractional part only if a digit follows the dot — `0..n`
            // leaves both dots to the range operator.
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                self.bump();
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.bump();
                }
            }
            if matches!(self.peek(0), b'e' | b'E') && {
                let s = if matches!(self.peek(1), b'+' | b'-') {
                    2
                } else {
                    1
                };
                self.peek(s).is_ascii_digit()
            } {
                self.bump();
                if matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
                while self.peek(0).is_ascii_digit() {
                    self.bump();
                }
            }
            // Type suffix (u32, f64, usize).
            while is_ident_byte(self.peek(0)) {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Num, text, at);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let at = (self.line, self.col());
        let start = self.i;
        while is_ident_byte(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        match text.as_str() {
            "r" | "br" | "rb" => {
                let mut hashes = 0usize;
                while self.peek(hashes) == b'#' {
                    hashes += 1;
                }
                if self.peek(hashes) == b'"' {
                    self.bump_n(hashes);
                    self.raw_string(hashes);
                    return;
                }
                if text == "r" && hashes > 0 && is_ident_start(self.peek(hashes)) {
                    // Raw identifier r#match: re-lex the name.
                    self.bump_n(hashes);
                    let nstart = self.i;
                    while is_ident_byte(self.peek(0)) {
                        self.bump();
                    }
                    let name = String::from_utf8_lossy(&self.b[nstart..self.i]).into_owned();
                    self.push(TokKind::Ident, name, at);
                    return;
                }
            }
            "b" => {
                if self.peek(0) == b'"' {
                    self.string();
                    return;
                }
                // b'…' byte literal: let the char lexer eat it.
                if self.peek(0) == b'\'' {
                    self.char_or_lifetime();
                    return;
                }
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, at);
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Lexes `src`, then marks tokens inside `#[cfg(test)]`-gated brace
/// blocks so rules can skip test-only code.
pub fn lex(src: &str) -> Lexed {
    let mut lexed = Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        line_start: 0,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run();
    mark_test_spans(&mut lexed.toks);
    lexed
}

/// Finds the matching `}` for the `{` at `open`, by token index.
pub fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn mark_test_spans(toks: &mut [Tok]) {
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip past further attributes to the item's opening brace.
        let mut j = i + 7;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            if let Some(close) = match_brace(toks, j) {
                for t in &mut toks[i..=close] {
                    t.in_test = true;
                }
                i = close + 1;
                continue;
            }
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let lexed = lex(r###"let s = r#"foo.unwrap() "quoted" \"#; s.len()"###);
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#"foo.unwrap() "quoted" \"#);
        // `unwrap` never appears as an identifier.
        assert!(!idents(r###"r#"x.unwrap()"#"###).contains(&"unwrap".to_string()));
    }

    #[test]
    fn comments_are_trivia_not_code() {
        let lexed =
            lex("let a = 1; // b.unwrap()\n/* c.unwrap() /* nested */ still comment */ let d = 2;");
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].text.contains("nested"));
        assert!(lexed.toks.iter().any(|t| t.is_ident("d")));
    }

    #[test]
    fn chars_lifetimes_and_labels_disambiguate() {
        let lexed = lex(
            r#"let c = '"'; let e = '\\'; let u = '\u{1f}'; fn f<'a>(x: &'a str) {} 'outer: loop { break 'outer; }"#,
        );
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, 3);
        assert_eq!(lifetimes, ["a", "a", "outer", "outer"]);
        // The string "…" after &'a lexes as a type ident, quotes intact.
        assert!(lexed.toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn byte_literals_do_not_open_strings() {
        // json.rs shape: a byte literal containing a double quote must not
        // swallow the rest of the file as a string.
        let lexed = lex(r#"match c { b'"' => x.push(1), b'\\' => y, _ => z }"#);
        assert!(lexed.toks.iter().any(|t| t.is_ident("push")));
        assert!(lexed.toks.iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn numbers_and_ranges() {
        let lexed = lex("for v in 0..space.card(a) as u16 { let h = 0xDC00; let f = 2.5e-3; }");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "0xDC00", "2.5e-3"]);
        assert!(lexed.toks.iter().any(|t| t.is_ident("u16")));
    }

    #[test]
    fn cfg_test_spans_are_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}";
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true]);
        let live2 = lexed.toks.iter().find(|t| t.is_ident("live2")).unwrap();
        assert!(!live2.in_test);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lexed = lex("let r#match = 1; let s = r\"raw\";");
        assert!(lexed.toks.iter().any(|t| t.is_ident("match")));
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "raw"));
    }
}
