//! `offline-deps` — the container has no network and no crates.io
//! vendor directory, so a registry dependency can never build. Every
//! `[dependencies]`/`[dev-dependencies]`/`[build-dependencies]` entry
//! in every manifest must resolve in-workspace: an inline table with
//! `path = "…"`, or `workspace = true` inheritance. This is how the
//! PR 1 seed broke (crates.io `rand`/`proptest` imports in an offline
//! container) — the rule keeps that class of breakage from landing
//! again.

use crate::Finding;

fn is_dep_section(section: &str) -> bool {
    let core = section
        .strip_prefix("target.")
        .and_then(|rest| rest.rfind('.').map(|i| &rest[i + 1..]))
        .unwrap_or(section);
    matches!(
        core.split('.').next().unwrap_or(core),
        "dependencies" | "dev-dependencies" | "build-dependencies"
    )
}

/// Lints one `Cargo.toml`. `file` is the workspace-relative path used
/// in findings.
pub fn offline_deps(file: &str, src: &str, out: &mut Vec<Finding>) {
    let mut section = String::new();
    // For `[dependencies.foo]` table-form deps: the open finding is
    // retracted if a `path` key shows up before the section ends.
    let mut table_dep: Option<Finding> = None;

    for (idx, raw) in src.lines().enumerate() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if let Some(header) = line.strip_prefix('[') {
            if let Some(open) = table_dep.take() {
                out.push(open);
            }
            section = header.trim_end_matches(']').trim().to_string();
            // `[dependencies.foo]` table form: offline until proven
            // otherwise by a `path` key inside the section.
            // (`[target.….dependencies]` ends with the section word and
            // stays inline form.)
            if is_dep_section(&section) && !section.ends_with("dependencies") {
                table_dep = Some(Finding {
                    file: file.to_string(),
                    line: line_no,
                    rule: "offline-deps",
                    message: format!(
                        "dependency table `[{section}]` has no `path` key — registry deps cannot \
                         resolve in the offline container; use an in-workspace path dep"
                    ),
                    excerpt: line.to_string(),
                });
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        if !section.ends_with("dependencies") {
            // Inside a `[dependencies.foo]` table.
            if line.starts_with("path") {
                table_dep = None;
            }
            continue;
        }
        // Inline form: `name = "1.0"` or `name = { … }`.
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let (name, spec) = (name.trim(), spec.trim());
        let offline = spec.contains("path") || spec.replace(' ', "").contains("workspace=true");
        if !offline {
            out.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule: "offline-deps",
                message: format!(
                    "dependency `{name}` does not use an in-workspace `path` (or workspace \
                     inheritance) — registry deps cannot resolve in the offline container"
                ),
                excerpt: line.to_string(),
            });
        }
    }
    if let Some(open) = table_dep.take() {
        out.push(open);
    }
}

/// Extracts the workspace-relative crate *directory names* of every
/// `path = "…"` dependency in a manifest — the edges of the crate
/// dependency graph the call-graph resolver respects. `path =
/// "../core"` and `path = "crates/core"` both yield `core`.
pub fn path_deps(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut section = String::new();
    for raw in src.lines() {
        let line = raw.trim();
        if let Some(header) = line.strip_prefix('[') {
            section = header.trim_end_matches(']').trim().to_string();
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        // `path = "../core"` appears either inline in a `{ … }` table or
        // as a key line of a `[dependencies.foo]` section.
        let Some(pos) = line.find("path") else {
            continue;
        };
        let rest = &line[pos + 4..];
        let Some(eq) = rest.find('=') else { continue };
        let Some(open) = rest[eq..].find('"') else {
            continue;
        };
        let val = &rest[eq + open + 1..];
        let Some(close) = val.find('"') else { continue };
        let path = &val[..close];
        if let Some(dir) = path.rsplit('/').next() {
            if !dir.is_empty() && !out.contains(&dir.to_string()) {
                out.push(dir.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        offline_deps("Cargo.toml", src, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = "[package]\nname = \"x\"\nversion = \"1.0\"\n\n[dependencies]\n\
                   rankfair_json = { path = \"../json\" }\nrand = { path = \"crates/rand\" }\n\
                   [dev-dependencies]\nfoo = { workspace = true }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn registry_deps_fail() {
        let src = "[dependencies]\nserde = \"1.0\"\nrayon = { version = \"1.8\" }\n";
        let out = run(src);
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("serde"));
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn table_form_needs_path() {
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        assert_eq!(run(bad).len(), 1);
        let good = "[dependencies.local]\npath = \"../local\"\n\n[package]\nname = \"x\"\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn path_deps_extracts_crate_dirs() {
        let src = "[package]\nname = \"rankfair_service\"\n\n[dependencies]\n\
                   rankfair_core = { path = \"../core\" }\nrankfair_json = { path = \"../json\" }\n\
                   [dev-dependencies.helper]\npath = \"crates/helper\"\n";
        assert_eq!(path_deps(src), ["core", "json", "helper"]);
    }

    #[test]
    fn package_metadata_is_not_a_dep() {
        // `version.workspace = true` under [package] must not trip the rule,
        // and random `key = value` lines outside dep sections are ignored.
        let src = "[package]\nversion.workspace = true\nedition = \"2021\"\n\
                   [features]\ndefault = []\n";
        assert!(run(src).is_empty());
    }
}
