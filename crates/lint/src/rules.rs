//! The source-level rules. Each rule walks the token stream from
//! [`crate::lexer`] and pushes [`Finding`]s (excerpts are attached by
//! the caller). Tokens inside `#[cfg(test)]` blocks are skipped — test
//! code may panic and cast freely.

use crate::lexer::{match_brace, Lexed, Tok, TokKind};
use crate::Finding;

fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        message,
        excerpt: String::new(),
    }
}

/// `lock-guard-liveness` — the PR 3 deadlock class.
///
/// A `.read()`/`.lock()` call inside a `match`/`if let`/`while let`/
/// `for` **header** produces a temporary guard that Rust keeps alive
/// through *every* arm and branch of the construct (scrutinee
/// temporaries drop at the end of the whole expression, not at the end
/// of the header). If any reachable branch then takes `.write()` or
/// `.lock()` on the same lock path, the thread deadlocks against
/// itself — exactly the shipped PR 3 bug
/// (`if let Some(c) = map.read()….get(..)` holding the read guard into
/// the else-branch `write()`). Plain-`if` conditions are exempt: their
/// temporaries drop before the block runs.
pub fn lock_guard_liveness(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.in_test {
            i += 1;
            continue;
        }
        let construct = if t.is_ident("match") {
            Some("match")
        } else if t.is_ident("if") && toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
            Some("if let")
        } else if t.is_ident("while") && toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
            Some("while let")
        } else if t.is_ident("for") {
            Some("for")
        } else {
            None
        };
        let Some(construct) = construct else {
            i += 1;
            continue;
        };
        let Some(open) = header_end(toks, i + 1) else {
            i += 1;
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            i += 1;
            continue;
        };
        // `if let` / `match` temporaries stay live through chained
        // else-branches and all arms; extend the body span over them.
        let body_end = extend_over_else(toks, close);

        for g in i + 1..open {
            let Some(path) = guard_call(toks, g, &["read", "lock"]) else {
                continue;
            };
            if let Some(w) = find_lock_use(toks, open + 1, body_end, &path, &["write", "lock"]) {
                out.push(finding(
                    file,
                    toks[i].line,
                    "lock-guard-liveness",
                    format!(
                        "temporary `.{}()` guard on `{}` in this `{construct}` header is held through \
                         every branch, and line {} takes `.{}()` on the same lock — bind the extracted \
                         value with a prior `let` so the guard drops first (PR 3 deadlock class)",
                        toks[g + 1].text,
                        path.join("."),
                        toks[w].line,
                        toks[w].text,
                    ),
                ));
                break;
            }
        }
        i = open + 1;
    }
}

/// Finds the `{` opening the construct body: the first `{` at
/// paren/bracket depth zero after `start`.
fn header_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Extends a body span over chained `else` / `else if` blocks (the
/// scrutinee temporary lives through all of them).
fn extend_over_else(toks: &[Tok], mut close: usize) -> usize {
    while toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
        let Some(open) = header_end(toks, close + 2) else {
            break;
        };
        let Some(next_close) = match_brace(toks, open) else {
            break;
        };
        close = next_close;
    }
    close
}

/// If `toks[g]` is the `.` of a zero-argument `.read()`/`.lock()` call,
/// returns the dotted receiver path (walked backwards over
/// `ident . ident . …`), e.g. `["self", "map"]`.
fn guard_call(toks: &[Tok], g: usize, methods: &[&str]) -> Option<Vec<String>> {
    if !toks[g].is_punct('.') {
        return None;
    }
    let m = toks.get(g + 1)?;
    if m.kind != TokKind::Ident || !methods.contains(&m.text.as_str()) {
        return None;
    }
    if !(toks.get(g + 2)?.is_punct('(') && toks.get(g + 3)?.is_punct(')')) {
        return None;
    }
    // Walk backwards: ident (. ident)* ending just before `g`.
    let mut path = Vec::new();
    let mut j = g;
    while j >= 1 && toks[j - 1].kind == TokKind::Ident {
        path.push(toks[j - 1].text.clone());
        if j >= 2 && toks[j - 2].is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    if path.is_empty() {
        return None;
    }
    path.reverse();
    Some(path)
}

/// Searches `toks[from..=to]` for `path[0].path[1]…` followed by
/// `.write()` / `.lock()`; returns the index of the method ident.
fn find_lock_use(
    toks: &[Tok],
    from: usize,
    to: usize,
    path: &[String],
    methods: &[&str],
) -> Option<usize> {
    'outer: for j in from..=to.min(toks.len().saturating_sub(1)) {
        let mut k = j;
        for (n, seg) in path.iter().enumerate() {
            if !toks.get(k).is_some_and(|t| t.is_ident(seg)) {
                continue 'outer;
            }
            if n + 1 < path.len() {
                if !toks.get(k + 1).is_some_and(|t| t.is_punct('.')) {
                    continue 'outer;
                }
                k += 2;
            }
        }
        if toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(k + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && methods.contains(&t.text.as_str()))
            && toks.get(k + 3).is_some_and(|t| t.is_punct('('))
        {
            return Some(k + 2);
        }
    }
    None
}

/// Keywords the lexer surfaces as plain identifiers but which can
/// never be the expression on the left of an index: after any of
/// these, `[` opens a slice type or an array literal.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "mut"
            | "dyn"
            | "impl"
            | "ref"
            | "move"
            | "as"
            | "in"
            | "return"
            | "break"
            | "else"
            | "match"
            | "if"
            | "while"
            | "const"
            | "static"
            | "where"
    )
}

/// `panic-path` — serving-path files must not contain a reachable
/// panic: no `.unwrap()`, `.expect()`, `panic!`/`unreachable!`/`todo!`/
/// `unimplemented!`, and no direct `container[index]` indexing (the
/// wire-robustness tests prove no panic *escapes*; this rule proves
/// none is *reachable*).
///
/// One documented exemption: `.expect(..)` chained **directly** onto
/// `.read()`/`.write()`/`.lock()` is lock-poison propagation — it can
/// only fire if another thread already panicked while holding the
/// lock, so it is not a new panic path.
pub fn panic_path(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unwrap" | "expect"
                    if i >= 1
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    if t.text == "expect" && is_lock_poison_chain(toks, i) {
                        continue;
                    }
                    out.push(finding(
                        file,
                        t.line,
                        "panic-path",
                        format!(
                            "`.{}()` on a serving path — return an in-band wire error instead",
                            t.text
                        ),
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                {
                    out.push(finding(
                        file,
                        t.line,
                        "panic-path",
                        format!(
                            "`{}!` on a serving path — restructure so the case is handled in-band",
                            t.text
                        ),
                    ));
                }
                _ => {}
            },
            TokKind::Punct if t.is_punct('[') && i >= 1 => {
                let p = &toks[i - 1];
                let indexes = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']');
                // `#[attr]` / `vec![…]` / `&[u8]` / `= [a, b]` all have a
                // non-indexing previous token and fall through, as do
                // keyword-led slices and array literals (`&mut [u8]`,
                // `return [a, b]`) — a keyword is never the expression
                // being indexed.
                if indexes {
                    out.push(finding(
                        file,
                        t.line,
                        "panic-path",
                        "direct indexing on a serving path can panic — use `.get(..)` and handle `None` in-band"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Is `toks[i]` (`expect`) directly chained onto a lock acquisition —
/// `… .read().expect(` / `.write().expect(` / `.lock().expect(`?
fn is_lock_poison_chain(toks: &[Tok], i: usize) -> bool {
    i >= 4
        && toks[i - 1].is_punct('.')
        && toks[i - 2].is_punct(')')
        && toks[i - 3].is_punct('(')
        && matches!(toks[i - 4].text.as_str(), "read" | "write" | "lock")
        && toks[i - 4].kind == TokKind::Ident
}

/// `lossy-cast` — the PR 5 wrap class: a narrowing `as u32`/`as u16`/
/// `as u8` silently truncates out-of-range values (a `u32` row-id wrap
/// corrupted ranking positions in PR 5). The cast is accepted only
/// with same-scope evidence that the value is bounded: the enclosing
/// `fn` mentions `<target>::try_from` or compares against
/// `<target>::MAX`, or the cast source is a literal that fits.
pub fn lossy_cast(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let fns = fn_spans(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !matches!(target.text.as_str(), "u8" | "u16" | "u32") {
            continue;
        }
        // `7 as u16`-style literal casts that fit are lossless.
        if i >= 1
            && toks[i - 1].kind == TokKind::Num
            && literal_fits(&toks[i - 1].text, &target.text)
        {
            continue;
        }
        let (lo, hi) = enclosing_span(&fns, i).unwrap_or((0, toks.len()));
        if has_bounds_evidence(&toks[lo..hi], &target.text) {
            continue;
        }
        out.push(finding(
            file,
            t.line,
            "lossy-cast",
            format!(
                "narrowing `as {0}` without bounds evidence in the enclosing fn — use \
                 `{0}::try_from(..)` (or check against `{0}::MAX`) so overflow fails loudly \
                 instead of wrapping (PR 5 wrap class)",
                target.text
            ),
        ));
    }
}

/// Token spans `(start, end_exclusive)` of every `fn` body, in order.
fn fn_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(open) = header_end(toks, i + 1) else {
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            continue;
        };
        spans.push((i, close + 1));
    }
    spans
}

/// The innermost recorded span containing token `i`.
fn enclosing_span(spans: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .filter(|(lo, hi)| *lo <= i && i < *hi)
        .max_by_key(|(lo, _)| *lo)
        .copied()
}

fn literal_fits(text: &str, target: &str) -> bool {
    let max: u64 = match target {
        "u8" => u8::MAX.into(),
        "u16" => u16::MAX.into(),
        _ => u32::MAX.into(),
    };
    let s: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, body) = if let Some(r) = s.strip_prefix("0x") {
        (16, r)
    } else if let Some(r) = s.strip_prefix("0o") {
        (8, r)
    } else if let Some(r) = s.strip_prefix("0b") {
        (2, r)
    } else {
        (10, s.as_str())
    };
    // Cut off any type suffix (`u64`, `usize`): digits of the radix only.
    let end = body
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(body.len(), |(i, _)| i);
    let digits = &body[..end];
    !digits.is_empty() && u64::from_str_radix(digits, radix).is_ok_and(|v| v <= max)
}

/// Does the span mention `<target>::try_from` or `<target>::MAX`?
fn has_bounds_evidence(toks: &[Tok], target: &str) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_ident(target)
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && (w[3].is_ident("try_from") || w[3].is_ident("MAX"))
    })
}

/// `strict-parse` — in wire-facing files, any `fn` that destructures
/// two or more distinct object members via `.get("…")` must route
/// through the member-allowlist helper (an identifier containing
/// `reject_unknown`), so misspelled or smuggled members fail loudly
/// instead of being silently ignored.
pub fn strict_parse(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for span in fn_spans(toks) {
        let (lo, hi) = span;
        if toks[lo].in_test {
            continue;
        }
        let name = toks
            .get(lo + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .unwrap_or("");
        if name.contains("reject_unknown") {
            continue;
        }
        let body = &toks[lo..hi];
        let mut members: Vec<&str> = Vec::new();
        for w in body.windows(4) {
            if w[0].is_punct('.')
                && w[1].is_ident("get")
                && w[2].is_punct('(')
                && w[3].kind == TokKind::Str
                && !members.contains(&w[3].text.as_str())
            {
                members.push(&w[3].text);
            }
        }
        if members.len() < 2 {
            continue;
        }
        let has_helper = body
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("reject_unknown"));
        if !has_helper {
            out.push(finding(
                file,
                toks[lo].line,
                "strict-parse",
                format!(
                    "`fn {name}` destructures members {} without a `reject_unknown` allowlist \
                     call — unknown members would be silently ignored",
                    members
                        .iter()
                        .map(|m| format!("\"{m}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Interprocedural rules. These run on the workspace call graph
// ([`crate::callgraph`]) instead of a single token stream: serving
// entry points seed a reachability frontier (`panic-reachability`),
// per-function lock summaries propagate along call edges
// (`lock-order-cycle`), and held guards are checked against blocking
// operations both direct and via callees (`guard-across-blocking`).
// ---------------------------------------------------------------------------

use crate::callgraph::{chain, reachable, Workspace};
use crate::Config;
use std::collections::{BTreeMap, BTreeSet};

/// One lock/guard acquisition site inside a function body.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Receiver path with a leading `self` stripped, joined with `.`
    /// — `self.lane.state.lock()` and `lane.state.lock()` are the same
    /// lock seen through different access paths.
    pub lock_id: String,
    /// `lock` / `read` / `write`.
    pub method: String,
    /// Token index of the method ident.
    pub tok: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// The `let`-bound guard variable, when the binding is a simple
    /// name (needed for the condvar-wait exemption and `drop(x)`).
    pub bound: Option<String>,
    /// Token range (inclusive) the guard is statically held over.
    pub span: (usize, usize),
    /// Acquired inside a `match`/`if let`/`while let`/`for` header —
    /// the shape `lock-guard-liveness` owns.
    pub header: bool,
}

/// One potentially blocking operation inside a function body.
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// Token index of the method/function ident.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// The blocking construct's name (`recv`, `wait`, `write_all`, …).
    pub what: String,
    /// For `Condvar::wait*`: the first argument when it is a bare
    /// identifier — the guard being handed over to the condvar.
    pub wait_arg: Option<String>,
}

/// Per-function concurrency summaries, closed over call edges.
pub struct Conc {
    /// Direct acquisition sites, per fn.
    pub acqs: Vec<Vec<Acq>>,
    /// Direct blocking sites, per fn.
    pub sites: Vec<Vec<BlockSite>>,
    /// Every lock a fn may acquire, directly or through callees.
    pub locks_all: Vec<BTreeSet<String>>,
    /// If a fn may block (directly or through callees): the witness
    /// `(file, line, construct)` of the underlying blocking site.
    pub blocks: Vec<Option<(String, u32, String)>>,
}

const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "recv_deadline",
    "send",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "accept",
];

fn in_nested(nested: &[(usize, usize)], j: usize) -> Option<usize> {
    nested
        .iter()
        .find(|(ns, ne)| *ns <= j && j <= *ne)
        .map(|&(_, ne)| ne)
}

/// Forward matcher for a `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// End of the statement containing `from`: the `;` at depth 0, or the
/// `}` closing the enclosing block (tail expression).
fn stmt_end(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < hi {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    hi.saturating_sub(1)
}

/// The `}` closing the block enclosing `from` (where a `let`-bound
/// guard drops).
fn block_end(toks: &[Tok], from: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < hi {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        }
        j += 1;
    }
    hi.saturating_sub(1)
}

/// A `match`/`if`/`if let`/`while`/`while let`/`for` construct inside a
/// body. `extends` — scrutinee temporaries live through the whole
/// construct (and any chained `else`); plain `if`/`while` conditions
/// drop theirs before the body runs.
struct Construct {
    kw: usize,
    open: usize,
    end: usize,
    extends: bool,
}

fn constructs(toks: &[Tok], lo: usize, hi: usize) -> Vec<Construct> {
    let mut out = Vec::new();
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_let = toks.get(i + 1).is_some_and(|n| n.is_ident("let"));
        let extends = match t.text.as_str() {
            "match" | "for" => true,
            "if" | "while" => is_let,
            _ => continue,
        };
        // Skip `else if` re-detection: the chain is folded into `end`.
        let Some(open) = header_end(toks, i + 1) else {
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            continue;
        };
        let end = if extends {
            extend_over_else(toks, close)
        } else {
            close
        };
        out.push(Construct {
            kw: i,
            open,
            end,
            extends,
        });
    }
    out
}

/// Extracts every lock/guard acquisition in `toks[lo..hi]`, with the
/// span the guard is held over:
///
/// * chained past the guard (`….lock().unwrap().recv()`) — a
///   temporary, dropped at the end of the statement (or held through
///   the whole construct when it sits in an extending header);
/// * `let g = ….lock()…;` — held to the end of the enclosing block, or
///   to an explicit `drop(g)`;
/// * bare statement / argument position — the end of the statement.
pub fn acquisitions(toks: &[Tok], lo: usize, hi: usize, nested: &[(usize, usize)]) -> Vec<Acq> {
    let cons = constructs(toks, lo, hi);
    let mut out = Vec::new();
    let mut j = lo;
    while j < hi {
        if let Some(ne) = in_nested(nested, j) {
            j = ne + 1;
            continue;
        }
        let Some(path) = guard_call(toks, j, &["lock", "read", "write"]) else {
            j += 1;
            continue;
        };
        let m = j + 1;
        let method = toks[m].text.clone();
        let mut id_path: &[String] = &path;
        if id_path.len() > 1 && id_path[0] == "self" {
            id_path = &id_path[1..];
        }
        let lock_id = id_path.join(".");

        // Walk the `.expect(..)` / `.unwrap()` tail: still the guard.
        let mut k = j + 4;
        while toks.get(k).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(k + 1)
                .is_some_and(|t| t.is_ident("expect") || t.is_ident("unwrap"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
        {
            match match_paren(toks, k + 2) {
                Some(close) => k = close + 1,
                None => break,
            }
        }
        let chained_past = toks.get(k).is_some_and(|t| t.is_punct('.'));

        // Innermost construct whose *header* holds this acquisition.
        let header = cons
            .iter()
            .filter(|c| c.kw < j && j < c.open)
            .max_by_key(|c| c.kw);

        let (span_end, bound, in_header) = if let Some(c) = header {
            if c.extends {
                (c.end, None, true)
            } else {
                // Plain `if`/`while`: condition temporaries drop at `{`.
                (c.open, None, false)
            }
        } else if chained_past {
            (stmt_end(toks, k, hi), None, false)
        } else {
            match let_binding(toks, j, lo) {
                Some(name) => {
                    let close = block_end(toks, j, hi);
                    let end = drop_site(toks, k, close, name.as_deref()).unwrap_or(close);
                    (end, name, false)
                }
                None => (stmt_end(toks, k, hi), None, false),
            }
        };
        out.push(Acq {
            lock_id,
            method,
            tok: m,
            line: toks[m].line,
            bound,
            span: (m, span_end),
            header: in_header,
        });
        j += 1;
    }
    out
}

/// If the statement containing the acquisition at `j` is a `let`,
/// returns `Some(Some(name))` for a simple binding, `Some(None)` for a
/// pattern binding. `None` — not a `let` statement.
#[allow(clippy::option_option)]
fn let_binding(toks: &[Tok], j: usize, lo: usize) -> Option<Option<String>> {
    // Scan back to the statement boundary at bracket depth 0.
    let mut depth = 0i32;
    let mut s = j;
    while s > lo {
        s -= 1;
        let t = &toks[s];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" if depth > 0 => depth -= 1,
            "(" | "[" | "{" | ";" => break,
            _ => {}
        }
    }
    let mut k = if toks[s].kind == TokKind::Punct {
        s + 1
    } else {
        s
    };
    if !toks.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    k += 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = toks.get(k).filter(|t| t.kind == TokKind::Ident)?;
    // `let name =` / `let name: Ty =` — anything else is a pattern.
    match toks.get(k + 1) {
        Some(n) if n.is_punct('=') || n.is_punct(':') => Some(Some(name.text.clone())),
        _ => Some(None),
    }
}

/// First `drop(name)` / `mem::drop(name)` between `from` and `to`.
fn drop_site(toks: &[Tok], from: usize, to: usize, name: Option<&str>) -> Option<usize> {
    let name = name?;
    for d in from..to {
        if toks[d].is_ident("drop")
            && toks.get(d + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(d + 2).is_some_and(|t| t.is_ident(name))
            && toks.get(d + 3).is_some_and(|t| t.is_punct(')'))
        {
            return Some(d + 3);
        }
    }
    None
}

/// Extracts every potentially blocking operation in `toks[lo..hi]`:
/// `Condvar::wait*`, channel `recv*`/`send`, socket/stream reads and
/// writes (`read_line`, `write_all`, `.read(buf)`, `.flush()`, …),
/// zero-argument `.join()`, `.accept()`, and `thread::scope` (which
/// joins its threads on exit).
pub fn blocking_sites(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    nested: &[(usize, usize)],
) -> Vec<BlockSite> {
    let mut out = Vec::new();
    let mut j = lo;
    while j < hi {
        if let Some(ne) = in_nested(nested, j) {
            j = ne + 1;
            continue;
        }
        let t = &toks[j];
        // `thread::scope(..)` — the scope joins every spawned thread.
        if t.is_ident("scope")
            && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
            && j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].is_ident("thread")
        {
            out.push(BlockSite {
                tok: j,
                line: t.line,
                what: "thread::scope".to_string(),
                wait_arg: None,
            });
            j += 1;
            continue;
        }
        if !(t.is_punct('.')
            && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(j + 2).is_some_and(|n| n.is_punct('(')))
        {
            j += 1;
            continue;
        }
        let name = toks[j + 1].text.as_str();
        let zero_arg = toks.get(j + 3).is_some_and(|n| n.is_punct(')'));
        let site = if WAIT_METHODS.contains(&name) {
            let wait_arg = toks
                .get(j + 3)
                .filter(|a| a.kind == TokKind::Ident)
                .map(|a| a.text.clone());
            Some(BlockSite {
                tok: j + 1,
                line: toks[j + 1].line,
                what: name.to_string(),
                wait_arg,
            })
        } else if BLOCKING_METHODS.contains(&name)
            || (name == "join" && zero_arg)
            || (matches!(name, "read" | "write") && !zero_arg)
        {
            Some(BlockSite {
                tok: j + 1,
                line: toks[j + 1].line,
                what: name.to_string(),
                wait_arg: None,
            })
        } else {
            None
        };
        if let Some(site) = site {
            out.push(site);
        }
        j += 1;
    }
    out
}

/// Computes per-fn acquisition/blocking sites and closes the lock-set
/// and may-block summaries over resolved call edges (fixpoint; test
/// fns contribute nothing).
pub fn concurrency_summaries(ws: &Workspace) -> Conc {
    let n = ws.fns.len();
    let mut acqs = Vec::with_capacity(n);
    let mut sites = Vec::with_capacity(n);
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            acqs.push(Vec::new());
            sites.push(Vec::new());
            continue;
        }
        let toks = &ws.units[f.unit].lexed.toks;
        let (lo, hi) = (f.body.0 + 1, f.body.1);
        acqs.push(acquisitions(toks, lo, hi, &ws.nested[fi]));
        sites.push(blocking_sites(toks, lo, hi, &ws.nested[fi]));
    }

    let mut locks_all: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.lock_id.clone()).collect())
        .collect();
    let mut blocks: Vec<Option<(String, u32, String)>> = (0..n)
        .map(|fi| {
            sites[fi].first().map(|s| {
                (
                    ws.units[ws.fns[fi].unit].file.clone(),
                    s.line,
                    s.what.clone(),
                )
            })
        })
        .collect();

    loop {
        let mut changed = false;
        for fi in 0..n {
            for call in &ws.calls[fi] {
                for &t in &call.targets {
                    if t == fi {
                        continue;
                    }
                    let add: Vec<String> = locks_all[t]
                        .iter()
                        .filter(|l| !locks_all[fi].contains(*l))
                        .cloned()
                        .collect();
                    for l in add {
                        locks_all[fi].insert(l);
                        changed = true;
                    }
                    if blocks[fi].is_none() {
                        if let Some(b) = blocks[t].clone() {
                            blocks[fi] = Some(b);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Conc {
        acqs,
        sites,
        locks_all,
        blocks,
    }
}

/// `panic-reachability` — the serving frontier, computed instead of
/// hand-curated: seed from every function defined in a serving-path
/// file ([`Config::is_panic_path`]) and walk resolved call edges; any
/// explicit panic construct (`.unwrap()`, `.expect(..)`,
/// `panic!`-family) in a *reached* function is a finding, with the
/// witness call chain in the message. Serving files themselves are
/// covered intraprocedurally by `panic-path` and are not re-reported;
/// unresolved calls stop the walk (that per-file rule is the fallback).
///
/// Exemptions, matching `panic-path`: `.expect(..)` directly chained
/// onto a lock acquisition (poison propagation) or onto
/// `try_from(..)` (checked narrowing — the loud failure `lossy-cast`
/// pushes code toward). Direct indexing stays out of scope here: it is
/// ubiquitous in the arena/engine hot loops and remains a per-file
/// concern.
pub fn panic_reachability(ws: &Workspace, cfg: &Config, out: &mut Vec<Finding>) {
    let seeds: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            let u = &ws.units[f.unit];
            !f.is_test && !u.test_dir && cfg.is_panic_path(&u.file)
        })
        .map(|(i, _)| i)
        .collect();
    let (seen, parent) = reachable(ws, &seeds);

    for (fi, f) in ws.fns.iter().enumerate() {
        let u = &ws.units[f.unit];
        if !seen[fi] || f.is_test || u.test_dir || cfg.is_panic_path(&u.file) {
            continue;
        }
        let toks = &u.lexed.toks;
        let via = chain(ws, &parent, fi);
        let mut j = f.body.0 + 1;
        while j < f.body.1 {
            if let Some(ne) = in_nested(&ws.nested[fi], j) {
                j = ne + 1;
                continue;
            }
            let t = &toks[j];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "unwrap" | "expect"
                        if j >= 1
                            && toks[j - 1].is_punct('.')
                            && toks.get(j + 1).is_some_and(|n| n.is_punct('(')) =>
                    {
                        if t.text == "expect"
                            && (is_lock_poison_chain(toks, j) || is_try_from_chain(toks, j))
                        {
                            j += 1;
                            continue;
                        }
                        out.push(finding(
                            &u.file,
                            t.line,
                            "panic-reachability",
                            format!(
                                "`.{}()` is reachable from a serving entry point ({via}) — \
                                 return an error to the caller instead",
                                t.text
                            ),
                        ));
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if toks.get(j + 1).is_some_and(|n| n.is_punct('!')) =>
                    {
                        out.push(finding(
                            &u.file,
                            t.line,
                            "panic-reachability",
                            format!(
                                "`{}!` is reachable from a serving entry point ({via}) — \
                                 handle the case in-band",
                                t.text
                            ),
                        ));
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }
}

/// Is `toks[i]` (`expect`) chained directly onto `try_from(..)` — the
/// checked-narrowing shape `u32::try_from(x).expect("…")`?
fn is_try_from_chain(toks: &[Tok], i: usize) -> bool {
    if !(i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].is_punct(')')) {
        return false;
    }
    // Match the `(` for the `)` at i-2, scanning backwards.
    let mut depth = 0i32;
    let mut j = i - 2;
    loop {
        let t = &toks[j];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return j >= 1 && toks[j - 1].is_ident("try_from");
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
}

/// `lock-order-cycle` — mechanically checks the deadlock-freedom
/// arguments the concurrency comments make in prose. Every acquisition
/// of lock `B` while lock `A` is statically held — in the same body or
/// inside any (transitively) called function — contributes an ordering
/// edge `A → B`; a cycle among distinct locks means two threads can
/// interleave into a deadlock. Re-acquiring the *same* lock while its
/// guard is held (directly, or via a callee that takes it again) is
/// reported immediately as self-deadlock. Construct-header
/// re-acquisitions are left to `lock-guard-liveness`, which owns that
/// shape.
pub fn lock_order_cycle(ws: &Workspace, conc: &Conc, out: &mut Vec<Finding>) {
    struct Edge {
        file: String,
        line: u32,
        holder_line: u32,
        via: Option<String>,
    }
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut dedup: BTreeSet<(String, u32, String)> = BTreeSet::new();

    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = &ws.units[f.unit].file;
        let acqs = &conc.acqs[fi];
        for a in acqs {
            // Direct nested acquisitions inside the held span.
            for b in acqs {
                if b.tok <= a.tok || b.tok > a.span.1 {
                    continue;
                }
                if b.lock_id == a.lock_id {
                    if !a.header && dedup.insert((file.clone(), b.line, a.lock_id.clone())) {
                        out.push(finding(
                            file,
                            b.line,
                            "lock-order-cycle",
                            format!(
                                "lock `{}` re-acquired here while the guard from line {} is \
                                 still held — self-deadlock",
                                a.lock_id, a.line
                            ),
                        ));
                    }
                } else {
                    edges
                        .entry((a.lock_id.clone(), b.lock_id.clone()))
                        .or_insert(Edge {
                            file: file.clone(),
                            line: b.line,
                            holder_line: a.line,
                            via: None,
                        });
                }
            }
            // Acquisitions reached through calls made under the guard.
            for call in &ws.calls[fi] {
                if call.tok <= a.tok || call.tok > a.span.1 {
                    continue;
                }
                for &t in &call.targets {
                    for l in &conc.locks_all[t] {
                        if *l == a.lock_id {
                            if dedup.insert((file.clone(), call.line, a.lock_id.clone())) {
                                out.push(finding(
                                    file,
                                    call.line,
                                    "lock-order-cycle",
                                    format!(
                                        "call to `{}` may re-acquire `{}` already held since \
                                         line {} — self-deadlock through the call graph",
                                        ws.fns[t].qual, a.lock_id, a.line
                                    ),
                                ));
                            }
                        } else {
                            edges.entry((a.lock_id.clone(), l.clone())).or_insert(Edge {
                                file: file.clone(),
                                line: call.line,
                                holder_line: a.line,
                                via: Some(ws.fns[t].qual.clone()),
                            });
                        }
                    }
                }
            }
        }
    }

    // Strongly connected components over the lock-order graph.
    let nodes: Vec<&String> = {
        let mut s: BTreeSet<&String> = BTreeSet::new();
        for (a, b) in edges.keys() {
            s.insert(a);
            s.insert(b);
        }
        s.into_iter().collect()
    };
    let ix: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        adj[ix[a]].push(ix[b]);
    }
    for sccs in sccs(&adj) {
        if sccs.len() < 2 {
            continue;
        }
        let members: BTreeSet<usize> = sccs.iter().copied().collect();
        let mut evidence: Vec<(&(String, String), &Edge)> = edges
            .iter()
            .filter(|((a, b), _)| members.contains(&ix[a]) && members.contains(&ix[b]))
            .collect();
        evidence.sort_by(|x, y| (&x.1.file, x.1.line).cmp(&(&y.1.file, y.1.line)));
        let locks: Vec<String> = sccs.iter().map(|&i| format!("`{}`", nodes[i])).collect();
        let shown: Vec<String> = evidence
            .iter()
            .take(4)
            .map(|((a, b), e)| match &e.via {
                Some(v) => format!(
                    "`{a}` → `{b}` at {}:{} (via `{v}`, holding `{a}` from line {})",
                    e.file, e.line, e.holder_line
                ),
                None => format!(
                    "`{a}` → `{b}` at {}:{} (holding `{a}` from line {})",
                    e.file, e.line, e.holder_line
                ),
            })
            .collect();
        let anchor = evidence.first().map(|(_, e)| (e.file.clone(), e.line));
        let Some((file, line)) = anchor else { continue };
        out.push(finding(
            &file,
            line,
            "lock-order-cycle",
            format!(
                "lock-order cycle among {}: {} — acquire these locks in one consistent \
                 order everywhere",
                locks.join(", "),
                shown.join("; "),
            ),
        ));
    }
}

/// Iterative Tarjan SCC over a small adjacency list; components are
/// returned with members sorted, in deterministic order.
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS stack: (node, edge cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if *cursor == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*cursor) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out.sort();
    out
}

/// `guard-across-blocking` — the PR 3 deadlock class generalized: a
/// held lock guard spanning a blocking operation (condvar wait,
/// channel `recv`/bounded `send`, socket I/O, joins) on a serving path
/// stalls every other thread needing that lock for as long as the peer
/// takes. Checked for all functions reachable from serving entry
/// points, plus integration-test files (a wedged test hangs CI).
///
/// Exemption: `Condvar::wait*(guard, ..)` consuming the *same* guard —
/// the wait releases the lock while blocked; that is the correct
/// condvar protocol, not a hazard. A *different* guard still held
/// around such a wait is reported.
pub fn guard_across_blocking(ws: &Workspace, cfg: &Config, conc: &Conc, out: &mut Vec<Finding>) {
    let seeds: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            let u = &ws.units[f.unit];
            !f.is_test && !u.test_dir && cfg.is_panic_path(&u.file)
        })
        .map(|(i, _)| i)
        .collect();
    let (seen, _) = reachable(ws, &seeds);
    let mut dedup: BTreeSet<(String, u32, String)> = BTreeSet::new();

    for (fi, f) in ws.fns.iter().enumerate() {
        let u = &ws.units[f.unit];
        if f.is_test || !(seen[fi] || u.test_dir) {
            continue;
        }
        let file = &u.file;
        let direct_toks: BTreeSet<usize> = conc.sites[fi].iter().map(|s| s.tok).collect();
        for a in &conc.acqs[fi] {
            for b in &conc.sites[fi] {
                if b.tok <= a.tok || b.tok > a.span.1 {
                    continue;
                }
                if b.wait_arg.is_some() && b.wait_arg == a.bound {
                    continue; // the guard is handed to the condvar
                }
                if dedup.insert((file.clone(), b.line, a.lock_id.clone())) {
                    out.push(finding(
                        file,
                        b.line,
                        "guard-across-blocking",
                        format!(
                            "guard on `{}` (held since line {}) spans blocking `{}` — drop \
                             the guard before blocking, or a stalled peer wedges every \
                             thread needing `{}`",
                            a.lock_id, a.line, b.what, a.lock_id
                        ),
                    ));
                }
            }
            for call in &ws.calls[fi] {
                if call.tok <= a.tok || call.tok > a.span.1 || direct_toks.contains(&call.tok) {
                    continue;
                }
                let Some(&t) = call.targets.iter().find(|&&t| conc.blocks[t].is_some()) else {
                    continue;
                };
                let Some((bfile, bline, what)) = &conc.blocks[t] else {
                    continue;
                };
                if dedup.insert((file.clone(), call.line, a.lock_id.clone())) {
                    out.push(finding(
                        file,
                        call.line,
                        "guard-across-blocking",
                        format!(
                            "guard on `{}` (held since line {}) is held across the call to \
                             `{}`, which blocks (`{}` at {}:{}) — drop the guard first",
                            a.lock_id, a.line, ws.fns[t].qual, what, bfile, bline
                        ),
                    ));
                }
            }
        }
    }
}
