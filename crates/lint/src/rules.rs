//! The source-level rules. Each rule walks the token stream from
//! [`crate::lexer`] and pushes [`Finding`]s (excerpts are attached by
//! the caller). Tokens inside `#[cfg(test)]` blocks are skipped — test
//! code may panic and cast freely.

use crate::lexer::{match_brace, Lexed, Tok, TokKind};
use crate::Finding;

fn finding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule,
        message,
        excerpt: String::new(),
    }
}

/// `lock-guard-liveness` — the PR 3 deadlock class.
///
/// A `.read()`/`.lock()` call inside a `match`/`if let`/`while let`/
/// `for` **header** produces a temporary guard that Rust keeps alive
/// through *every* arm and branch of the construct (scrutinee
/// temporaries drop at the end of the whole expression, not at the end
/// of the header). If any reachable branch then takes `.write()` or
/// `.lock()` on the same lock path, the thread deadlocks against
/// itself — exactly the shipped PR 3 bug
/// (`if let Some(c) = map.read()….get(..)` holding the read guard into
/// the else-branch `write()`). Plain-`if` conditions are exempt: their
/// temporaries drop before the block runs.
pub fn lock_guard_liveness(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.in_test {
            i += 1;
            continue;
        }
        let construct = if t.is_ident("match") {
            Some("match")
        } else if t.is_ident("if") && toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
            Some("if let")
        } else if t.is_ident("while") && toks.get(i + 1).is_some_and(|n| n.is_ident("let")) {
            Some("while let")
        } else if t.is_ident("for") {
            Some("for")
        } else {
            None
        };
        let Some(construct) = construct else {
            i += 1;
            continue;
        };
        let Some(open) = header_end(toks, i + 1) else {
            i += 1;
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            i += 1;
            continue;
        };
        // `if let` / `match` temporaries stay live through chained
        // else-branches and all arms; extend the body span over them.
        let body_end = extend_over_else(toks, close);

        for g in i + 1..open {
            let Some(path) = guard_call(toks, g, &["read", "lock"]) else {
                continue;
            };
            if let Some(w) = find_lock_use(toks, open + 1, body_end, &path, &["write", "lock"]) {
                out.push(finding(
                    file,
                    toks[i].line,
                    "lock-guard-liveness",
                    format!(
                        "temporary `.{}()` guard on `{}` in this `{construct}` header is held through \
                         every branch, and line {} takes `.{}()` on the same lock — bind the extracted \
                         value with a prior `let` so the guard drops first (PR 3 deadlock class)",
                        toks[g + 1].text,
                        path.join("."),
                        toks[w].line,
                        toks[w].text,
                    ),
                ));
                break;
            }
        }
        i = open + 1;
    }
}

/// Finds the `{` opening the construct body: the first `{` at
/// paren/bracket depth zero after `start`.
fn header_end(toks: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Extends a body span over chained `else` / `else if` blocks (the
/// scrutinee temporary lives through all of them).
fn extend_over_else(toks: &[Tok], mut close: usize) -> usize {
    while toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
        let Some(open) = header_end(toks, close + 2) else {
            break;
        };
        let Some(next_close) = match_brace(toks, open) else {
            break;
        };
        close = next_close;
    }
    close
}

/// If `toks[g]` is the `.` of a zero-argument `.read()`/`.lock()` call,
/// returns the dotted receiver path (walked backwards over
/// `ident . ident . …`), e.g. `["self", "map"]`.
fn guard_call(toks: &[Tok], g: usize, methods: &[&str]) -> Option<Vec<String>> {
    if !toks[g].is_punct('.') {
        return None;
    }
    let m = toks.get(g + 1)?;
    if m.kind != TokKind::Ident || !methods.contains(&m.text.as_str()) {
        return None;
    }
    if !(toks.get(g + 2)?.is_punct('(') && toks.get(g + 3)?.is_punct(')')) {
        return None;
    }
    // Walk backwards: ident (. ident)* ending just before `g`.
    let mut path = Vec::new();
    let mut j = g;
    while j >= 1 && toks[j - 1].kind == TokKind::Ident {
        path.push(toks[j - 1].text.clone());
        if j >= 2 && toks[j - 2].is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    if path.is_empty() {
        return None;
    }
    path.reverse();
    Some(path)
}

/// Searches `toks[from..=to]` for `path[0].path[1]…` followed by
/// `.write()` / `.lock()`; returns the index of the method ident.
fn find_lock_use(
    toks: &[Tok],
    from: usize,
    to: usize,
    path: &[String],
    methods: &[&str],
) -> Option<usize> {
    'outer: for j in from..=to.min(toks.len().saturating_sub(1)) {
        let mut k = j;
        for (n, seg) in path.iter().enumerate() {
            if !toks.get(k).is_some_and(|t| t.is_ident(seg)) {
                continue 'outer;
            }
            if n + 1 < path.len() {
                if !toks.get(k + 1).is_some_and(|t| t.is_punct('.')) {
                    continue 'outer;
                }
                k += 2;
            }
        }
        if toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(k + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && methods.contains(&t.text.as_str()))
            && toks.get(k + 3).is_some_and(|t| t.is_punct('('))
        {
            return Some(k + 2);
        }
    }
    None
}

/// Keywords the lexer surfaces as plain identifiers but which can
/// never be the expression on the left of an index: after any of
/// these, `[` opens a slice type or an array literal.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "mut"
            | "dyn"
            | "impl"
            | "ref"
            | "move"
            | "as"
            | "in"
            | "return"
            | "break"
            | "else"
            | "match"
            | "if"
            | "while"
            | "const"
            | "static"
            | "where"
    )
}

/// `panic-path` — serving-path files must not contain a reachable
/// panic: no `.unwrap()`, `.expect()`, `panic!`/`unreachable!`/`todo!`/
/// `unimplemented!`, and no direct `container[index]` indexing (the
/// wire-robustness tests prove no panic *escapes*; this rule proves
/// none is *reachable*).
///
/// One documented exemption: `.expect(..)` chained **directly** onto
/// `.read()`/`.write()`/`.lock()` is lock-poison propagation — it can
/// only fire if another thread already panicked while holding the
/// lock, so it is not a new panic path.
pub fn panic_path(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unwrap" | "expect"
                    if i >= 1
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    if t.text == "expect" && is_lock_poison_chain(toks, i) {
                        continue;
                    }
                    out.push(finding(
                        file,
                        t.line,
                        "panic-path",
                        format!(
                            "`.{}()` on a serving path — return an in-band wire error instead",
                            t.text
                        ),
                    ));
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                {
                    out.push(finding(
                        file,
                        t.line,
                        "panic-path",
                        format!(
                            "`{}!` on a serving path — restructure so the case is handled in-band",
                            t.text
                        ),
                    ));
                }
                _ => {}
            },
            TokKind::Punct if t.is_punct('[') && i >= 1 => {
                let p = &toks[i - 1];
                let indexes = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']');
                // `#[attr]` / `vec![…]` / `&[u8]` / `= [a, b]` all have a
                // non-indexing previous token and fall through, as do
                // keyword-led slices and array literals (`&mut [u8]`,
                // `return [a, b]`) — a keyword is never the expression
                // being indexed.
                if indexes {
                    out.push(finding(
                        file,
                        t.line,
                        "panic-path",
                        "direct indexing on a serving path can panic — use `.get(..)` and handle `None` in-band"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Is `toks[i]` (`expect`) directly chained onto a lock acquisition —
/// `… .read().expect(` / `.write().expect(` / `.lock().expect(`?
fn is_lock_poison_chain(toks: &[Tok], i: usize) -> bool {
    i >= 4
        && toks[i - 1].is_punct('.')
        && toks[i - 2].is_punct(')')
        && toks[i - 3].is_punct('(')
        && matches!(toks[i - 4].text.as_str(), "read" | "write" | "lock")
        && toks[i - 4].kind == TokKind::Ident
}

/// `lossy-cast` — the PR 5 wrap class: a narrowing `as u32`/`as u16`/
/// `as u8` silently truncates out-of-range values (a `u32` row-id wrap
/// corrupted ranking positions in PR 5). The cast is accepted only
/// with same-scope evidence that the value is bounded: the enclosing
/// `fn` mentions `<target>::try_from` or compares against
/// `<target>::MAX`, or the cast source is a literal that fits.
pub fn lossy_cast(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    let fns = fn_spans(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !matches!(target.text.as_str(), "u8" | "u16" | "u32") {
            continue;
        }
        // `7 as u16`-style literal casts that fit are lossless.
        if i >= 1
            && toks[i - 1].kind == TokKind::Num
            && literal_fits(&toks[i - 1].text, &target.text)
        {
            continue;
        }
        let (lo, hi) = enclosing_span(&fns, i).unwrap_or((0, toks.len()));
        if has_bounds_evidence(&toks[lo..hi], &target.text) {
            continue;
        }
        out.push(finding(
            file,
            t.line,
            "lossy-cast",
            format!(
                "narrowing `as {0}` without bounds evidence in the enclosing fn — use \
                 `{0}::try_from(..)` (or check against `{0}::MAX`) so overflow fails loudly \
                 instead of wrapping (PR 5 wrap class)",
                target.text
            ),
        ));
    }
}

/// Token spans `(start, end_exclusive)` of every `fn` body, in order.
fn fn_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(open) = header_end(toks, i + 1) else {
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            continue;
        };
        spans.push((i, close + 1));
    }
    spans
}

/// The innermost recorded span containing token `i`.
fn enclosing_span(spans: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .filter(|(lo, hi)| *lo <= i && i < *hi)
        .max_by_key(|(lo, _)| *lo)
        .copied()
}

fn literal_fits(text: &str, target: &str) -> bool {
    let max: u64 = match target {
        "u8" => u8::MAX.into(),
        "u16" => u16::MAX.into(),
        _ => u32::MAX.into(),
    };
    let s: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, body) = if let Some(r) = s.strip_prefix("0x") {
        (16, r)
    } else if let Some(r) = s.strip_prefix("0o") {
        (8, r)
    } else if let Some(r) = s.strip_prefix("0b") {
        (2, r)
    } else {
        (10, s.as_str())
    };
    // Cut off any type suffix (`u64`, `usize`): digits of the radix only.
    let end = body
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map_or(body.len(), |(i, _)| i);
    let digits = &body[..end];
    !digits.is_empty() && u64::from_str_radix(digits, radix).is_ok_and(|v| v <= max)
}

/// Does the span mention `<target>::try_from` or `<target>::MAX`?
fn has_bounds_evidence(toks: &[Tok], target: &str) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_ident(target)
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && (w[3].is_ident("try_from") || w[3].is_ident("MAX"))
    })
}

/// `strict-parse` — in wire-facing files, any `fn` that destructures
/// two or more distinct object members via `.get("…")` must route
/// through the member-allowlist helper (an identifier containing
/// `reject_unknown`), so misspelled or smuggled members fail loudly
/// instead of being silently ignored.
pub fn strict_parse(file: &str, lx: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lx.toks;
    for span in fn_spans(toks) {
        let (lo, hi) = span;
        if toks[lo].in_test {
            continue;
        }
        let name = toks
            .get(lo + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .unwrap_or("");
        if name.contains("reject_unknown") {
            continue;
        }
        let body = &toks[lo..hi];
        let mut members: Vec<&str> = Vec::new();
        for w in body.windows(4) {
            if w[0].is_punct('.')
                && w[1].is_ident("get")
                && w[2].is_punct('(')
                && w[3].kind == TokKind::Str
                && !members.contains(&w[3].text.as_str())
            {
                members.push(&w[3].text);
            }
        }
        if members.len() < 2 {
            continue;
        }
        let has_helper = body
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("reject_unknown"));
        if !has_helper {
            out.push(finding(
                file,
                toks[lo].line,
                "strict-parse",
                format!(
                    "`fn {name}` destructures members {} without a `reject_unknown` allowlist \
                     call — unknown members would be silently ignored",
                    members
                        .iter()
                        .map(|m| format!("\"{m}\""))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}
