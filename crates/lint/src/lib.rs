//! `rankfair_lint` — workspace-local static analysis for the serving
//! stack.
//!
//! The offline container rules out dylint and clippy cannot express
//! repo-specific invariants, so — like the in-workspace `rand` and
//! `json` crates — the analyzer is built here. It lexes every `*.rs`
//! under `crates/*/src`, `crates/*/tests` and `src/` ([`lexer`]),
//! parses items into a brace tree ([`parse`]), builds a workspace-wide
//! call graph ([`callgraph`]), and runs eight rules grounded in
//! shipped bugs and standing invariants ([`rules`], [`manifest`]):
//!
//! | rule | invariant | origin |
//! |------|-----------|--------|
//! | `lock-guard-liveness` | no temporary `.read()`/`.lock()` guard in a `match`/`if let`/`while let`/`for` header whose body takes `.write()`/`.lock()` on the same lock | PR 3 deadlock |
//! | `panic-path` | no `unwrap`/`expect`/`panic!`-family/indexing in serving-path files | wire robustness |
//! | `panic-reachability` | no explicit panic construct transitively *reachable* from a serving entry point, anywhere in the workspace | computed serving frontier |
//! | `lock-order-cycle` | the workspace lock-order graph (held-guard sets propagated along call edges) is acyclic, and no lock is re-acquired while held | session-lane deadlock-freedom |
//! | `guard-across-blocking` | no guard held (directly or via callee) across a blocking call on a serving path | PR 3 class, generalized |
//! | `lossy-cast` | no narrowing `as u32`/`u16`/`u8` without same-scope bounds evidence | PR 5 row-id wrap |
//! | `offline-deps` | every manifest dependency is an in-workspace `path` dep | offline container |
//! | `strict-parse` | wire-facing member destructures go through the allowlist helper | strict wire protocol |
//!
//! The first five source rules are intraprocedural and per-file; the
//! three concurrency/reachability rules run on the call graph, with
//! unresolved calls treated conservatively (the per-file rules are the
//! fallback where resolution stops). Files under `tests/` directories
//! are scanned for the two concurrency rules only — a deadlocked test
//! wedges CI just as hard — while the panic rules stay src-only.
//!
//! A finding is suppressed by a `// lint:allow(<rule>) -- <reason>`
//! comment — trailing on the offending line, or on its own line
//! directly above it. The reason is mandatory; malformed or unused
//! allows are themselves findings (`allow-missing-reason`,
//! `allow-unknown-rule`, `allow-unused`), and every live allow must be
//! ledgered in `LINT_ALLOWS.md` (`allow-ledger`) so suppressions cannot
//! accrete silently.

pub mod callgraph;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;

use rankfair_json::Value;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// The eight source-level / manifest-level rules.
pub const RULES: [&str; 8] = [
    "lock-guard-liveness",
    "panic-path",
    "panic-reachability",
    "lock-order-cycle",
    "guard-across-blocking",
    "lossy-cast",
    "offline-deps",
    "strict-parse",
];

/// Meta rules produced by the suppression, ledger, and configuration
/// machinery; these cannot themselves be suppressed.
pub const META_RULES: [&str; 5] = [
    "allow-missing-reason",
    "allow-unknown-rule",
    "allow-unused",
    "allow-ledger",
    "serving-path-config",
];

/// The suppression ledger file, relative to the workspace root.
pub const LEDGER_FILE: &str = "LINT_ALLOWS.md";

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`RULES`] or [`META_RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// One live (used, well-formed) `lint:allow` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Workspace-relative path of the file holding the comment.
    pub file: String,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// Rule being suppressed.
    pub rule: String,
    /// The mandatory justification after `--`.
    pub reason: String,
}

/// Which files each path-scoped rule applies to. Paths are
/// workspace-relative suffixes so tests can synthesize matching names.
#[derive(Debug, Clone)]
pub struct Config {
    /// Serving-path files where `panic-path` applies: the wire loop,
    /// the serve loop, the service registry, the JSON parser, and the
    /// monitor-update path.
    pub panic_path_files: Vec<String>,
    /// Wire-facing files where `strict-parse` applies.
    pub strict_parse_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let own = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            panic_path_files: own(&[
                "crates/service/src/lib.rs",
                "crates/service/src/wire.rs",
                "crates/service/src/serve.rs",
                "crates/service/src/session.rs",
                "crates/service/src/net.rs",
                "crates/json/src/lib.rs",
                "crates/core/src/json.rs",
                "crates/core/src/monitor.rs",
            ]),
            strict_parse_files: own(&[
                "crates/service/src/wire.rs",
                "crates/service/src/session.rs",
                "crates/service/src/net.rs",
                "crates/core/src/json.rs",
            ]),
        }
    }
}

impl Config {
    fn applies(list: &[String], file: &str) -> bool {
        list.iter()
            .any(|p| file == p || file.ends_with(&format!("/{p}")))
    }

    /// Does `panic-path` run on `file`?
    pub fn is_panic_path(&self, file: &str) -> bool {
        Self::applies(&self.panic_path_files, file)
    }

    /// Does `strict-parse` run on `file`?
    pub fn is_strict_parse(&self, file: &str) -> bool {
        Self::applies(&self.strict_parse_files, file)
    }
}

/// Result of analyzing one source file.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings, including suppression meta-findings.
    pub findings: Vec<Finding>,
    /// Well-formed allows that suppressed at least one finding.
    pub allows: Vec<Allow>,
}

struct AllowSite {
    line: u32,
    target_line: u32,
    rule: String,
    reason: String,
    used: bool,
}

/// The crate-directory name a workspace-relative path belongs to:
/// `crates/<name>/…` → `<name>`, everything else → `root`.
pub fn crate_name_of(file: &str) -> String {
    let mut parts = file.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

/// Is this a file under a `tests/` directory (integration tests)?
/// Those are scanned for the concurrency rules only.
pub fn is_test_dir(file: &str) -> bool {
    file.starts_with("tests/") || file.contains("/tests/")
}

/// A whole-workspace analysis: per-file findings plus the call graph
/// the interprocedural rules ran on (kept for `--dump-callgraph`).
pub struct WorkspaceAnalysis {
    /// Unsuppressed findings, including suppression meta-findings.
    pub findings: Vec<Finding>,
    /// Well-formed allows that suppressed at least one finding.
    pub allows: Vec<Allow>,
    /// The workspace call graph.
    pub graph: callgraph::Workspace,
}

/// Runs every source-level rule — per-file and interprocedural — over
/// a set of `(workspace-relative path, source)` pairs, applying
/// suppressions. `crate_deps` carries the manifest dependency edges
/// (crate dir → dep crate dirs); an empty map (single-file fixtures)
/// leaves cross-crate visibility open.
pub fn analyze_workspace(
    files: &[(String, String)],
    cfg: &Config,
    crate_deps: &BTreeMap<String, Vec<String>>,
) -> WorkspaceAnalysis {
    let units: Vec<callgraph::Unit> = files
        .iter()
        .map(|(file, src)| callgraph::Unit {
            file: file.clone(),
            crate_name: crate_name_of(file),
            test_dir: is_test_dir(file),
            lexed: lexer::lex(src),
        })
        .collect();

    // Per-file intraprocedural rules (src files only).
    let mut raw: Vec<Finding> = Vec::new();
    for u in &units {
        if u.test_dir {
            continue;
        }
        rules::lock_guard_liveness(&u.file, &u.lexed, &mut raw);
        if cfg.is_panic_path(&u.file) {
            rules::panic_path(&u.file, &u.lexed, &mut raw);
        }
        rules::lossy_cast(&u.file, &u.lexed, &mut raw);
        if cfg.is_strict_parse(&u.file) {
            rules::strict_parse(&u.file, &u.lexed, &mut raw);
        }
    }

    // Interprocedural rules on the call graph.
    let graph = callgraph::build(units, crate_deps);
    let conc = rules::concurrency_summaries(&graph);
    rules::panic_reachability(&graph, cfg, &mut raw);
    rules::lock_order_cycle(&graph, &conc, &mut raw);
    rules::guard_across_blocking(&graph, cfg, &conc, &mut raw);

    // Suppression pass, per file.
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    for (ui, (file, src)) in files.iter().enumerate() {
        let lines: Vec<&str> = src.lines().collect();
        let lexed = &graph.units[ui].lexed;
        let mut sites = collect_allow_sites(file, lexed, &lines, &mut findings);

        for f in raw.iter_mut().filter(|f| f.file == *file) {
            f.excerpt = excerpt(&lines, f.line);
            let mut suppressed = false;
            for s in sites.iter_mut() {
                if s.rule == f.rule && s.target_line == f.line {
                    s.used = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                findings.push(f.clone());
            }
        }

        for s in &sites {
            if s.used {
                allows.push(Allow {
                    file: file.clone(),
                    line: s.line,
                    rule: s.rule.clone(),
                    reason: s.reason.clone(),
                });
            } else {
                findings.push(Finding {
                    file: file.clone(),
                    line: s.line,
                    rule: "allow-unused",
                    message: format!(
                        "lint:allow({}) suppresses nothing — the finding it covered is gone; remove it",
                        s.rule
                    ),
                    excerpt: excerpt(&lines, s.line),
                });
            }
        }
    }

    WorkspaceAnalysis {
        findings,
        allows,
        graph,
    }
}

/// Runs every source-level rule over one file, applying suppressions —
/// a single-file [`analyze_workspace`]. `file` is the
/// workspace-relative path; rules scoped by [`Config`] match on it.
pub fn analyze_source(file: &str, src: &str, cfg: &Config) -> Analysis {
    let wa = analyze_workspace(
        &[(file.to_string(), src.to_string())],
        cfg,
        &BTreeMap::new(),
    );
    Analysis {
        findings: wa.findings,
        allows: wa.allows,
    }
}

/// Parses `lint:allow(rule) -- reason` comments into suppression
/// sites, emitting meta-findings for malformed ones. An own-line
/// comment targets the next token-bearing line; a trailing comment
/// targets its own line.
fn collect_allow_sites(
    file: &str,
    lexed: &lexer::Lexed,
    lines: &[&str],
    findings: &mut Vec<Finding>,
) -> Vec<AllowSite> {
    let mut sites = Vec::new();
    for c in &lexed.comments {
        // A directive is the whole comment: `// lint:allow(rule) -- why`.
        // Doc prose *mentioning* the syntax (`/// … lint:allow(…) …`)
        // starts with the doc-comment marker and is skipped.
        let text = c.text.trim_start();
        let Some(rest) = text.strip_prefix("lint:allow(") else {
            continue;
        };
        let (rule, after) = match rest.find(')') {
            Some(close) => (rest[..close].trim().to_string(), &rest[close + 1..]),
            None => (String::new(), ""),
        };
        let reason = after
            .find("--")
            .map(|p| after[p + 2..].trim().to_string())
            .unwrap_or_default();

        if !RULES.contains(&rule.as_str()) {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "allow-unknown-rule",
                message: format!("lint:allow names unknown rule `{rule}`"),
                excerpt: excerpt(lines, c.line),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                rule: "allow-missing-reason",
                message: format!(
                    "lint:allow({rule}) has no reason — write `lint:allow({rule}) -- <why this is sound>`"
                ),
                excerpt: excerpt(lines, c.line),
            });
            continue;
        }
        let target_line = if c.own_line {
            lexed
                .toks
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        sites.push(AllowSite {
            line: c.line,
            target_line,
            rule,
            reason,
            used: false,
        });
    }
    sites
}

fn excerpt(lines: &[&str], line: u32) -> String {
    let idx = (line as usize).saturating_sub(1);
    let text = lines.get(idx).map(|l| l.trim()).unwrap_or("");
    let mut out: String = text.chars().take(120).collect();
    if out.len() < text.len() {
        out.push('…');
    }
    out
}

/// A whole-workspace lint report.
#[derive(Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// All live allows, sorted by (file, line).
    pub allows: Vec<Allow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked.
    pub manifests_scanned: usize,
}

/// Lints the workspace rooted at `root` and keeps the call graph for
/// inspection (`--dump-callgraph`): every `*.rs` under `src/`,
/// `tests/`, `crates/*/src/` and `crates/*/tests/`, every `Cargo.toml`
/// (root + per-crate), the serving-path configuration, and the
/// suppression ledger.
pub fn run_with_graph(root: &Path) -> Result<(Report, callgraph::Workspace), String> {
    let cfg = Config::default();
    let mut report = Report::default();

    let mut sources = Vec::new();
    for dir in [root.join("src"), root.join("tests")] {
        if dir.is_dir() {
            walk_rs(&dir, &mut sources).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        }
    }
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if !path.is_dir() {
                continue;
            }
            for sub in [path.join("src"), path.join("tests")] {
                if sub.is_dir() {
                    walk_rs(&sub, &mut sources)
                        .map_err(|e| format!("walking {}: {e}", sub.display()))?;
                }
            }
            let manifest = path.join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    sources.sort();
    manifests.sort();

    let mut files: Vec<(String, String)> = Vec::new();
    for path in &sources {
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        files.push((rel_path(root, path), src));
    }

    // Manifest dependency edges gate cross-crate call resolution.
    let mut crate_deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for path in &manifests {
        if !path.is_file() {
            continue;
        }
        let src =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let crate_dir = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("root")
            .to_string();
        crate_deps
            .entry(crate_dir)
            .or_default()
            .extend(manifest::path_deps(&src));
        manifest::offline_deps(&rel, &src, &mut report.findings);
        report.manifests_scanned += 1;
    }

    let paths: Vec<String> = files.iter().map(|(f, _)| f.clone()).collect();
    report.findings.extend(serving_path_config(&cfg, &paths));

    let wa = analyze_workspace(&files, &cfg, &crate_deps);
    report.findings.extend(wa.findings);
    report.allows.extend(wa.allows);
    report.files_scanned = files.len();

    check_ledger(root, &report.allows, &mut report.findings);

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((report, wa.graph))
}

/// [`run_with_graph`] without the graph.
pub fn run(root: &Path) -> Result<Report, String> {
    run_with_graph(root).map(|(report, _)| report)
}

/// `serving-path-config` — the drift meta-check on the hand-written
/// serving-file list: a configured file that no longer exists has
/// silently dropped out of `panic-path`/seed coverage, and a new
/// `crates/service/src/*.rs` file absent from the list is serving code
/// the lint is not seeding from. Pure over the scanned path list so it
/// is directly testable.
pub fn serving_path_config(cfg: &Config, scanned: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    for p in &cfg.panic_path_files {
        if !scanned.iter().any(|f| f == p) {
            out.push(Finding {
                file: p.clone(),
                line: 1,
                rule: "serving-path-config",
                message: format!(
                    "serving-path configuration names `{p}` but no such file was scanned — a \
                     rename silently dropped it from panic-path coverage; update \
                     Config::panic_path_files"
                ),
                excerpt: String::new(),
            });
        }
    }
    for f in scanned {
        let Some(rest) = f.strip_prefix("crates/service/src/") else {
            continue;
        };
        if rest.contains('/') || !rest.ends_with(".rs") {
            continue;
        }
        if !cfg.panic_path_files.iter().any(|p| p == f) {
            out.push(Finding {
                file: f.clone(),
                line: 1,
                rule: "serving-path-config",
                message: format!(
                    "new service source file `{f}` is not in the serving-path configuration — \
                     add it to Config::panic_path_files so the panic rules seed from it"
                ),
                excerpt: String::new(),
            });
        }
    }
    out
}

/// Compares live allows against `LINT_ALLOWS.md`. Ledger entries are
/// bullets of the shape ``- `path` · `rule` — reason``, one per allow
/// site; any per-(file, rule) count drift is a finding, so the allow
/// population cannot change without a visible ledger diff.
fn check_ledger(root: &Path, allows: &[Allow], findings: &mut Vec<Finding>) {
    let mut actual: BTreeMap<(String, String), usize> = BTreeMap::new();
    for a in allows {
        *actual.entry((a.file.clone(), a.rule.clone())).or_insert(0) += 1;
    }

    let ledger_src = fs::read_to_string(root.join(LEDGER_FILE)).unwrap_or_default();
    let mut ledgered: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut in_fence = false;
    for line in ledger_src.lines() {
        let line = line.trim();
        if line.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with("- `") {
            continue;
        }
        let mut parts = line.split('`');
        // parts: "- ", file, " · ", rule, " — reason"
        let (Some(_), Some(file), Some(_), Some(rule)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        *ledgered
            .entry((file.to_string(), rule.to_string()))
            .or_insert(0) += 1;
    }

    let keys: std::collections::BTreeSet<_> = actual.keys().chain(ledgered.keys()).collect();
    for key in keys {
        let have = actual.get(key).copied().unwrap_or(0);
        let want = ledgered.get(key).copied().unwrap_or(0);
        if have != want {
            findings.push(Finding {
                file: LEDGER_FILE.to_string(),
                line: 1,
                rule: "allow-ledger",
                message: format!(
                    "`{}` has {have} lint:allow({}) suppression(s) but the ledger lists {want} — update {LEDGER_FILE}",
                    key.0, key.1
                ),
                excerpt: String::new(),
            });
        }
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Deterministic JSON encoding of a report (no clocks, sorted entries)
/// so CI runs are byte-diffable.
pub fn report_json(r: &Report) -> Value {
    let findings = r
        .findings
        .iter()
        .map(|f| {
            Value::object([
                ("file", Value::from(f.file.as_str())),
                ("line", Value::from(u64::from(f.line))),
                ("rule", Value::from(f.rule)),
                ("message", Value::from(f.message.as_str())),
                ("excerpt", Value::from(f.excerpt.as_str())),
            ])
        })
        .collect();
    let allows = r
        .allows
        .iter()
        .map(|a| {
            Value::object([
                ("file", Value::from(a.file.as_str())),
                ("line", Value::from(u64::from(a.line))),
                ("rule", Value::from(a.rule.as_str())),
                ("reason", Value::from(a.reason.as_str())),
            ])
        })
        .collect();
    Value::object([
        ("findings", Value::array(findings)),
        ("allows", Value::array(allows)),
        (
            "summary",
            Value::object([
                ("files_scanned", Value::from(r.files_scanned)),
                ("manifests_scanned", Value::from(r.manifests_scanned)),
                ("findings", Value::from(r.findings.len())),
                ("allows", Value::from(r.allows.len())),
            ]),
        ),
    ])
}
