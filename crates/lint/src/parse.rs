//! A brace-tree item parser over the token stream from
//! [`crate::lexer`]: just enough structure for interprocedural rules.
//!
//! The parser walks one file's tokens and extracts every function
//! definition — free functions, inherent and trait-impl methods, trait
//! default methods, and functions nested inside other functions — with
//! its body's token span and the module / impl context it sits in. It
//! is a heuristic item scanner, not a grammar: it reacts to the item
//! keywords `mod` / `impl` / `trait` / `fn` (and skips `macro_rules!`
//! bodies wholesale), relying on the lexer having already hidden
//! strings, comments, and char literals. Constructs it does not model
//! (struct bodies, `use` trees, const expressions) are walked through
//! token by token and simply contribute no items.
//!
//! Spans are token-index ranges into the file's `Lexed::toks`, so rule
//! code can slice the stream directly; `line`/`col` on the `fn` token
//! anchor findings and the `--dump-callgraph` output.

use crate::lexer::{match_brace, Tok, TokKind};

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The bare function name (`submit`, `wait`).
    pub name: String,
    /// Fully qualified display name:
    /// `crate::module::Type::name` / `crate::module::name`. Functions
    /// nested inside another function get the parent function as a
    /// module-like segment, so the qualified name stays unique.
    pub qual: String,
    /// Index of the file (into the workspace's unit list) this fn
    /// lives in. Filled by the call-graph builder; `parse_file` leaves
    /// it 0.
    pub unit: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Module path within the file (`["tests"]` for `mod tests`).
    pub module: Vec<String>,
    /// The `impl`/`trait` type this fn is a method of, if any.
    pub impl_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body's `{` and `}` (inclusive).
    pub body: (usize, usize),
    /// Whether the definition sits inside a `#[cfg(test)]` span.
    pub is_test: bool,
}

impl FnDef {
    /// Does this definition's body strictly contain `other`'s? (Used to
    /// exclude nested fn items when scanning a parent body.)
    pub fn contains(&self, other: &FnDef) -> bool {
        self.body.0 < other.sig_start && other.body.1 < self.body.1
    }
}

/// Parses one file's items. `crate_name` prefixes qualified names.
pub fn parse_file(crate_name: &str, toks: &[Tok]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut ctx = Ctx {
        crate_name,
        module: Vec::new(),
        impl_type: None,
    };
    walk_items(toks, 0, toks.len(), &mut ctx, &mut out);
    out
}

struct Ctx<'a> {
    crate_name: &'a str,
    module: Vec<String>,
    impl_type: Option<String>,
}

impl Ctx<'_> {
    fn qual(&self, name: &str) -> String {
        let mut parts = vec![self.crate_name.to_string()];
        parts.extend(self.module.iter().cloned());
        if let Some(t) = &self.impl_type {
            parts.push(t.clone());
        }
        parts.push(name.to_string());
        parts.join("::")
    }
}

/// Scans `toks[i..end]` for item keywords, recursing into `mod`,
/// `impl`, `trait` and `fn` bodies.
fn walk_items(toks: &[Tok], mut i: usize, end: usize, ctx: &mut Ctx, out: &mut Vec<FnDef>) {
    while i < end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            // A macro definition's body is token soup that may contain
            // `fn`/`impl` fragments — skip it wholesale.
            "macro_rules" => {
                i = skip_to_block_end(toks, i + 1, end);
            }
            "mod" => {
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    i += 1;
                    continue;
                };
                // `mod name;` declares an out-of-line module: no body here.
                if toks.get(i + 2).is_some_and(|n| n.is_punct('{')) {
                    let open = i + 2;
                    let Some(close) = match_brace(toks, open) else {
                        return;
                    };
                    ctx.module.push(name.text.clone());
                    let saved_impl = ctx.impl_type.take();
                    walk_items(toks, open + 1, close, ctx, out);
                    ctx.impl_type = saved_impl;
                    ctx.module.pop();
                    i = close + 1;
                } else {
                    i += 2;
                }
            }
            "impl" | "trait" => {
                let header = if t.text == "impl" {
                    impl_header(toks, i + 1, end)
                } else {
                    trait_header(toks, i + 1, end)
                };
                let Some((type_name, open)) = header else {
                    i += 1;
                    continue;
                };
                let Some(close) = match_brace(toks, open) else {
                    return;
                };
                let saved = ctx.impl_type.replace(type_name);
                walk_items(toks, open + 1, close, ctx, out);
                ctx.impl_type = saved;
                i = close + 1;
            }
            "fn" => {
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                    // `fn(..)` pointer type or malformed — not a definition.
                    i += 1;
                    continue;
                };
                let Some(open) = fn_body_open(toks, i + 2, end) else {
                    // Trait method declaration (`fn x(..);`) — no body.
                    i += 2;
                    continue;
                };
                let Some(close) = match_brace(toks, open) else {
                    return;
                };
                out.push(FnDef {
                    name: name.text.clone(),
                    qual: ctx.qual(&name.text),
                    unit: 0,
                    line: t.line,
                    module: ctx.module.clone(),
                    impl_type: ctx.impl_type.clone(),
                    sig_start: i,
                    body: (open, close),
                    is_test: t.in_test,
                });
                // Nested `fn` items become their own definitions, scoped
                // under the parent function's name (and its impl type,
                // folded into the module path so quals stay unique).
                let saved_impl = ctx.impl_type.take();
                if let Some(t) = &saved_impl {
                    ctx.module.push(t.clone());
                }
                ctx.module.push(name.text.clone());
                walk_items(toks, open + 1, close, ctx, out);
                ctx.module.pop();
                if saved_impl.is_some() {
                    ctx.module.pop();
                }
                ctx.impl_type = saved_impl;
                i = close + 1;
            }
            _ => i += 1,
        }
    }
}

/// Finds the `{` opening a fn body: the first `{` at paren/bracket
/// depth 0, with `<`/`>` generics skipped so a `{` can never hide in a
/// signature. Returns `None` on a bodyless declaration (`;` first).
fn fn_body_open(toks: &[Tok], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" if depth == 0 && j == start => {
                    // Generic parameter list directly after the name.
                    j = skip_angles(toks, j, end);
                    continue;
                }
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Parses an `impl` header starting after the keyword. Returns the
/// implemented type's last path segment and the body-opening `{`:
/// `impl<'a> Session<'a> {` → `Session`; `impl Display for AuditError
/// {` → `AuditError` (the `for` target wins).
fn impl_header(toks: &[Tok], start: usize, end: usize) -> Option<(String, usize)> {
    let mut j = start;
    // Leading generic parameters: `impl<'a, T: Bound> …`.
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(toks, j, end);
    }
    let mut last_seg: Option<String> = None;
    while j < end {
        let t = &toks[j];
        match t.kind {
            TokKind::Ident if t.text == "for" => {
                // Trait impl: the type follows; restart collection.
                last_seg = None;
                j += 1;
            }
            TokKind::Ident if t.text == "where" => {
                // No more type segments; scan ahead to the body brace.
                while j < end && !toks[j].is_punct('{') {
                    j += 1;
                }
            }
            TokKind::Ident => {
                last_seg = Some(t.text.clone());
                j += 1;
            }
            TokKind::Punct if t.is_punct('<') => {
                j = skip_angles(toks, j, end);
            }
            TokKind::Punct if t.is_punct('{') => {
                return last_seg.map(|s| (s, j));
            }
            _ => j += 1,
        }
    }
    None
}

/// Parses a `trait` header: the trait's name and its body-opening `{`.
fn trait_header(toks: &[Tok], start: usize, end: usize) -> Option<(String, usize)> {
    let name = toks.get(start).filter(|t| t.kind == TokKind::Ident)?;
    let mut j = start + 1;
    while j < end {
        if toks[j].is_punct('{') {
            return Some((name.text.clone(), j));
        }
        if toks[j].is_punct(';') {
            return None;
        }
        j += 1;
    }
    None
}

/// Skips a balanced `<…>` group starting at the `<` at `open`. A `>`
/// preceded by `-` is an arrow (`->`), not a closer. Returns the index
/// just past the matching `>`.
fn skip_angles(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < end {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Skips from a `macro_rules` keyword to just past its closing brace.
fn skip_to_block_end(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut j = start;
    while j < end && !toks[j].is_punct('{') {
        j += 1;
    }
    match match_brace(toks, j) {
        Some(close) => close + 1,
        None => end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn quals(src: &str) -> Vec<String> {
        parse_file("demo", &lex(src).toks)
            .into_iter()
            .map(|f| f.qual)
            .collect()
    }

    #[test]
    fn free_fns_methods_and_modules() {
        let src = "\
fn top() {}
mod inner {
    pub fn helper() {}
    impl Widget {
        fn draw(&self) {}
    }
}
impl<'a> Session<'a> {
    pub(crate) fn dispatch(&mut self) {}
}
";
        assert_eq!(
            quals(src),
            [
                "demo::top",
                "demo::inner::helper",
                "demo::inner::Widget::draw",
                "demo::Session::dispatch",
            ]
        );
    }

    #[test]
    fn trait_impls_use_the_for_target() {
        let src = "\
impl Display for AuditError {
    fn fmt(&self, f: &mut Formatter) -> Result {}
}
trait Provider {
    fn n(&self) -> usize;
    fn default_counts(&self) -> u32 { 0 }
}
";
        assert_eq!(
            quals(src),
            ["demo::AuditError::fmt", "demo::Provider::default_counts"]
        );
    }

    /// Nested impls and nested fns stay scoped; bodies nest strictly.
    #[test]
    fn nested_impls_and_fns() {
        let src = "\
fn outer() {
    fn inner() {}
    let c = |x: u32| x + 1;
}
mod a {
    mod b {
        impl Deep {
            fn leaf(&self) {
                fn leaf_helper() {}
            }
        }
    }
}
";
        let fns = parse_file("demo", &lex(src).toks);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "demo::outer",
                "demo::outer::inner",
                "demo::a::b::Deep::leaf",
                "demo::a::b::Deep::leaf::leaf_helper",
            ]
        );
        let outer = &fns[0];
        let inner = &fns[1];
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        let leaf = &fns[2];
        assert!(leaf.contains(&fns[3]));
    }

    /// Generic signatures with `->` arrows inside angle brackets must
    /// not derail body detection; fn-pointer types are not definitions.
    #[test]
    fn generics_arrows_and_fn_pointer_types() {
        let src = "\
fn apply<F: FnOnce() -> (String, bool)>(f: F) -> bool {
    f().1
}
struct Holder {
    callback: fn(u32) -> u32,
}
impl<F> Wrapper<F> where F: Fn(u8) -> u8 {
    fn call(&self) {}
}
";
        assert_eq!(quals(src), ["demo::apply", "demo::Wrapper::call"]);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let src = "\
macro_rules! gen {
    () => { fn generated() {} };
}
fn real() {}
";
        assert_eq!(quals(src), ["demo::real"]);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src = "\
trait CountsProvider {
    fn n(&self) -> usize;
    fn counts(&self, k: usize) -> (u32, u32);
}
";
        assert!(quals(src).is_empty());
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let fns = parse_file("demo", &lex(src).toks);
        assert_eq!(fns.len(), 2);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
        assert_eq!(fns[1].module, ["tests"]);
    }
}
