//! Randomized differential harness: on seeded random instances —
//! datasets, bucketizations, rankings with heavy score ties, bounds
//! including `LinearFraction` at extreme `α`s, `k = 1`, all-qualifying
//! and none-qualifying `τs` edges — the optimized engines, the baseline
//! engines and a test-local brute-force oracle (a *third* code path: full
//! pattern-graph enumeration with naive row-scan counting) must agree on
//! every `k` for UnderRep, OverRep and Combined. And a [`MonitorAudit`]
//! must equal a fresh [`Audit::run`] over its current data after **every
//! edit** of ≥ 100 seeded edit sequences.
//!
//! Everything is reproducible by seed; CI runs exactly this file as the
//! randomized sweep gate.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rankfair::core::{
    oracle, Audit, AuditKResult, AuditTask, BiasMeasure, Bounds, DetectConfig, Engine,
    MonitorAudit, OverRepScope, Pattern, PatternSpace, RankingEdit,
};
use rankfair::data::{Dataset, RowValue};
use rankfair::rank::Ranking;
use rankfair::synth::{random_dataset, random_ranking, RandomSpec};

/// Test-local brute force for the upper-bound side: enumerate the entire
/// pattern graph by cartesian product (no search tree, no pruning), count
/// by row scan, filter, and apply a quadratic boundary filter. Written
/// deliberately unlike both the optimized engine and `Engine::Baseline`'s
/// stack-based enumeration.
fn oracle_over_full(
    ds: &Dataset,
    space: &PatternSpace,
    ranking: &Ranking,
    tau: usize,
    k: usize,
    u: usize,
    scope: OverRepScope,
) -> Vec<Pattern> {
    let m = space.n_attrs();
    // Mixed-radix counter over (card(a) + 1) digits; digit card(a) = "attribute absent".
    let radix: Vec<usize> = (0..m).map(|a| space.card(a as u16) + 1).collect();
    let mut digits = vec![0usize; m];
    let mut qualifying: Vec<Pattern> = Vec::new();
    loop {
        let terms: Vec<(u16, u16)> = digits
            .iter()
            .enumerate()
            .filter(|&(a, &d)| d < radix[a] - 1)
            .map(|(a, &d)| (a as u16, d as u16))
            .collect();
        if !terms.is_empty() {
            let p = Pattern::from_terms(terms).expect("distinct attributes");
            let (sd, srk) = oracle::naive_counts(ds, space, ranking, &p, k);
            if sd >= tau && srk > u {
                qualifying.push(p);
            }
        }
        // Increment the counter.
        let mut i = 0;
        loop {
            if i == m {
                let mut out: Vec<Pattern> = qualifying
                    .iter()
                    .filter(|p| {
                        !qualifying.iter().any(|q| match scope {
                            OverRepScope::MostSpecific => p.is_proper_subset_of(q),
                            OverRepScope::MostGeneral => q.is_proper_subset_of(p),
                        })
                    })
                    .cloned()
                    .collect();
                out.sort_unstable();
                return out;
            }
            digits[i] += 1;
            if digits[i] < radix[i] {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

/// A random instance: categorical attributes plus a numeric score column
/// (drawn from a tiny value set so ties are the norm, exercising the
/// stable tie-break everywhere), optionally bucketized into extra
/// pattern attributes.
fn random_audit(rng: &mut StdRng) -> (Audit, usize) {
    let rows = rng.random_range(10..48usize);
    let attrs = rng.random_range(2..4usize);
    let max_card = rng.random_range(2..4usize);
    let mut ds = random_dataset(
        rng.random::<u64>() % 100_000,
        RandomSpec {
            rows,
            attrs,
            max_card,
        },
    );
    let tied_scores = rng.random::<bool>();
    let scores: Vec<f64> = (0..rows)
        .map(|_| {
            if tied_scores {
                rng.random_range(0..6usize) as f64
            } else {
                rng.random::<f64>() * 100.0
            }
        })
        .collect();
    ds.push_column(rankfair::data::Column::numeric("score", scores.clone()))
        .unwrap();
    let mut builder = Audit::builder(Arc::new(ds));
    // Half the instances rank by the (tied) score column, half by a
    // random permutation; a third of them bucketize the score into a
    // pattern attribute.
    builder = if rng.random::<bool>() {
        builder.ranking(Ranking::from_scores_desc(&scores))
    } else {
        builder.ranking(Ranking::from_order(random_ranking(rng.random::<u64>(), rows)).unwrap())
    };
    if rng.random_range(0..3usize) == 0 {
        builder = builder.bucketize("score", rng.random_range(2..5usize));
    }
    (builder.build().unwrap(), rows)
}

fn random_bounds(rng: &mut StdRng, rows: usize) -> Bounds {
    match rng.random_range(0..4usize) {
        0 => Bounds::constant(rng.random_range(0..=rows / 2)),
        1 => {
            let base = rng.random_range(0..3usize);
            let step = rng.random_range(1..3usize);
            Bounds::steps(vec![
                (0, base),
                (rows / 4, base + step),
                (rows / 2, base + 2 * step),
            ])
        }
        // LinearFraction across the extremes: 0 (nothing bounded), tiny,
        // mid, ~1, and > 1 (bound beyond k — everything under / nothing
        // legal over).
        _ => Bounds::LinearFraction(
            [0.0, 0.01, 0.3, 0.5, 0.99, 1.0, 2.5][rng.random_range(0..7usize)],
        ),
    }
}

#[test]
fn engines_agree_with_each_other_and_the_oracle_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..60 {
        let (audit, rows) = random_audit(&mut rng);
        // τs sweep hits both degenerate edges: 0 (every pattern
        // substantial) and > rows (no pattern substantial).
        let tau = [0, 1, rng.random_range(1..8usize), rows + 1][rng.random_range(0..4usize)];
        // k = 1 always included; k_max sometimes the whole dataset.
        let k_max = if rng.random::<bool>() {
            rows
        } else {
            rng.random_range(1..=rows)
        };
        let cfg = DetectConfig::new(tau, 1, k_max);
        let lower = random_bounds(&mut rng, rows);
        let upper = random_bounds(&mut rng, rows);
        let alpha = [0.01, 0.5, 0.8, 1.0, 1.5, 10.0][rng.random_range(0..6usize)];
        let tasks = [
            AuditTask::UnderRep(BiasMeasure::GlobalLower(lower.clone())),
            AuditTask::UnderRep(BiasMeasure::Proportional { alpha }),
            AuditTask::OverRep {
                upper: upper.clone(),
                scope: OverRepScope::MostSpecific,
            },
            AuditTask::OverRep {
                upper: upper.clone(),
                scope: OverRepScope::MostGeneral,
            },
            AuditTask::Combined {
                lower: lower.clone(),
                upper: upper.clone(),
            },
        ];
        for task in &tasks {
            let opt = audit.run(&cfg, task, Engine::Optimized).unwrap();
            let base = audit.run(&cfg, task, Engine::Baseline).unwrap();
            assert_eq!(
                opt.per_k, base.per_k,
                "case {case}: optimized vs baseline, {task:?}"
            );
            // Third implementation: the full-enumeration oracle.
            match task {
                AuditTask::UnderRep(measure) => {
                    let want = oracle::detect(
                        audit.dataset(),
                        audit.space(),
                        audit.ranking(),
                        tau,
                        1,
                        k_max,
                        measure,
                    );
                    let got: Vec<_> = opt
                        .per_k
                        .iter()
                        .map(|kr| (kr.k, kr.under.clone()))
                        .collect();
                    let want: Vec<_> = want.into_iter().map(|kr| (kr.k, kr.patterns)).collect();
                    assert_eq!(got, want, "case {case}: vs oracle, {task:?}");
                }
                AuditTask::OverRep { upper, scope } => {
                    for kr in &opt.per_k {
                        let want = oracle_over_full(
                            audit.dataset(),
                            audit.space(),
                            audit.ranking(),
                            tau,
                            kr.k,
                            upper.at(kr.k),
                            *scope,
                        );
                        assert_eq!(
                            kr.over, want,
                            "case {case}: vs full-enumeration oracle at k={}, {task:?}",
                            kr.k
                        );
                    }
                }
                AuditTask::Combined { .. } => {} // both sides checked above
            }
        }
    }
}

/// Checkpoint-equivalence sweep: seeded edit sequences against monitors
/// whose engines carry **persistent checkpointed state** at every cadence
/// `C ∈ {1, 2, 3, 5, 9}`. After every batch — top-of-ranking edits whose
/// hull swallows the whole checkpoint grid (forcing an in-place seek
/// repair), deep-span reorders, mixed batches, and checkpoint-
/// invalidating inserts — the delta re-audit (seek + repair + replay)
/// must be identical to a fresh `Audit::run` over the monitor's current
/// data. Bounds include `LinearFraction` on **both** sides, whose
/// `L_k`/`U_k` change at every single `k`, so replays cross a bound step
/// at every advance.
#[test]
fn checkpointed_delta_reaudits_match_fresh_audits_at_every_cadence() {
    let mut rng = StdRng::seed_from_u64(0xC4E7);
    for case in 0..40usize {
        let cadence = [1usize, 2, 3, 5, 9][case % 5];
        let rows = rng.random_range(12..36usize);
        let attrs = rng.random_range(2..4usize);
        let mut ds = random_dataset(
            rng.random::<u64>() % 100_000,
            RandomSpec {
                rows,
                attrs,
                max_card: 3,
            },
        );
        let scores: Vec<f64> = (0..rows)
            .map(|_| rng.random_range(0..8usize) as f64)
            .collect();
        ds.push_column(rankfair::data::Column::numeric("score", scores))
            .unwrap();
        let tau = rng.random_range(0..5usize);
        let k_max = rng.random_range(3..=rows);
        let cfg = DetectConfig::new(tau, rng.random_range(1..3usize).min(k_max), k_max);
        // Fraction bounds change at every k — the hardest replay shape.
        let task = match rng.random_range(0..3usize) {
            0 => AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::LinearFraction(
                [0.1, 0.3, 0.6][rng.random_range(0..3usize)],
            ))),
            1 => AuditTask::OverRep {
                upper: Bounds::LinearFraction([0.2, 0.4][rng.random_range(0..2usize)]),
                scope: if rng.random::<bool>() {
                    OverRepScope::MostSpecific
                } else {
                    OverRepScope::MostGeneral
                },
            },
            _ => AuditTask::Combined {
                lower: Bounds::LinearFraction(0.25),
                upper: Bounds::LinearFraction(0.5),
            },
        };
        let mut monitor = MonitorAudit::builder(ds, "score")
            .checkpoint_every(cadence)
            .build(cfg.clone(), task.clone(), Engine::Optimized)
            .unwrap();
        assert_eq!(
            monitor.checkpoint_stats().unwrap().cadence,
            cadence,
            "case {case}"
        );
        for batch_no in 0..5 {
            let n = monitor.n_rows();
            let batch: Vec<RankingEdit> = match batch_no % 3 {
                // A top-of-ranking strike: position 0 changes occupant,
                // the hull swallows *every* checkpoint, and the seek
                // snapshot must be repaired in place from the top-k set
                // diff before the replay.
                0 => vec![RankingEdit::ScoreUpdate {
                    row: monitor.ranking().at(0),
                    score: -1.0 - batch_no as f64,
                }],
                // A mid/deep reorder whose seek checkpoint is already
                // valid (hull starts at or above it).
                1 => vec![RankingEdit::ScoreUpdate {
                    row: monitor.ranking().at(rng.random_range(n / 2..n)),
                    score: rng.random_range(0..8usize) as f64,
                }],
                // A mixed batch with an insert: n and s_D move, the
                // whole store is invalidated and reseeded.
                _ => {
                    let cells: Vec<RowValue> = monitor
                        .dataset()
                        .columns()
                        .iter()
                        .map(|c| {
                            if c.is_categorical() {
                                let card = c.cardinality().unwrap();
                                let code = rng.random_range(0..card) as u16;
                                RowValue::Label(c.label_of(code).unwrap().to_string())
                            } else {
                                RowValue::Number(rng.random_range(0..8usize) as f64)
                            }
                        })
                        .collect();
                    vec![
                        RankingEdit::ScoreUpdate {
                            row: rng.random_range(0..n) as u32,
                            score: rng.random_range(0..8usize) as f64,
                        },
                        RankingEdit::Insert { cells },
                    ]
                }
            };
            monitor.apply(&batch).unwrap();
            let fresh = Audit::builder(Arc::new(monitor.dataset().clone()))
                .ranking(monitor.ranking())
                .build()
                .unwrap()
                .run(&cfg, &task, Engine::Optimized)
                .unwrap();
            assert_eq!(
                monitor.results(),
                &fresh.per_k[..],
                "case {case} cadence {cadence} batch {batch_no}: checkpointed delta diverged"
            );
        }
        let stats = monitor.checkpoint_stats().unwrap();
        // The sequence forced every regime: top strikes exercised the
        // in-place checkpoint repair, deep edits plain seeks, and the
        // inserts full invalidation plus cold reseeding.
        assert!(stats.seeks > 0, "case {case}: {stats:?}");
        assert!(stats.repairs > 0, "case {case}: {stats:?}");
        assert!(stats.cold_builds >= 2, "case {case}: {stats:?}");
        assert!(stats.invalidated > 0, "case {case}: {stats:?}");
    }
}

/// Segmented replay (the default) versus full-hull replay: at every
/// cadence `C ∈ {1, 2, 3, 5, 9}` and on both engine sides (lower-only,
/// upper-only, and combined tasks), a segmented monitor and a hull
/// monitor fed identical batches must both equal a fresh `Audit::run`
/// after every batch — and on a **sparse** batch (two tight adjacent
/// swaps 55 rank positions apart inside a full-width `k` range) the
/// segmented monitor must report exactly the two point segments and
/// replay strictly fewer steps than the hull monitor.
#[test]
fn segmented_replay_matches_hull_replay_and_replays_fewer_steps() {
    let rows = 72usize;
    let tasks = [
        // Lower engine only.
        AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::LinearFraction(0.3))),
        // Upper engine only.
        AuditTask::OverRep {
            upper: Bounds::LinearFraction(0.4),
            scope: OverRepScope::MostSpecific,
        },
        // Both engines at once.
        AuditTask::Combined {
            lower: Bounds::LinearFraction(0.25),
            upper: Bounds::LinearFraction(0.5),
        },
    ];
    // Move the occupant of rank `pos` exactly one position down: score it
    // strictly between the current occupants of `pos + 1` and `pos + 2`.
    let swap_at = |m: &MonitorAudit, pos: usize| {
        let col = m.dataset().column_by_name("score").unwrap();
        let below = col.value(m.ranking().at(pos + 1) as usize);
        let floor = col.value(m.ranking().at(pos + 2) as usize);
        RankingEdit::ScoreUpdate {
            row: m.ranking().at(pos),
            score: (below + floor) / 2.0,
        }
    };
    for cadence in [1usize, 2, 3, 5, 9] {
        for (t, task) in tasks.iter().enumerate() {
            let mut ds = random_dataset(
                (cadence * 31 + t) as u64,
                RandomSpec {
                    rows,
                    attrs: 3,
                    max_card: 3,
                },
            );
            // Distinct descending scores: row `i` starts at position `i`,
            // so the batches below can target exact rank positions.
            let scores: Vec<f64> = (0..rows).map(|i| (rows - i) as f64).collect();
            ds.push_column(rankfair::data::Column::numeric("score", scores))
                .unwrap();
            let cfg = DetectConfig::new(2, 1, rows);
            let build = |segmented: bool| {
                MonitorAudit::builder(ds.clone(), "score")
                    .checkpoint_every(cadence)
                    .segmented_replay(segmented)
                    .build(cfg.clone(), task.clone(), Engine::Optimized)
                    .unwrap()
            };
            let mut seg = build(true);
            let mut hull = build(false);
            let mut prev_seg = seg.checkpoint_stats().unwrap().replayed_steps;
            let mut prev_hull = hull.checkpoint_stats().unwrap().replayed_steps;
            for batch_no in 0..3 {
                let batch: Vec<RankingEdit> = match batch_no {
                    // Sparse: two adjacent-swap clusters 55 positions apart.
                    0 => vec![swap_at(&seg, 5), swap_at(&seg, 60)],
                    // One deep swap: both modes replay the same point.
                    1 => vec![swap_at(&seg, 40)],
                    // Top strike: the hull swallows the whole grid and the
                    // seek checkpoints need in-place repair in both modes.
                    _ => vec![RankingEdit::ScoreUpdate {
                        row: seg.ranking().at(0),
                        score: -1.0,
                    }],
                };
                let seg_report = seg.apply(&batch).unwrap();
                let hull_report = hull.apply(&batch).unwrap();
                assert_eq!(
                    seg_report.changed, hull_report.changed,
                    "cadence {cadence} task {t} batch {batch_no}: changed-k sets differ"
                );
                let fresh = Audit::builder(Arc::new(seg.dataset().clone()))
                    .ranking(seg.ranking())
                    .build()
                    .unwrap()
                    .run(&cfg, task, Engine::Optimized)
                    .unwrap();
                assert_eq!(
                    seg.results(),
                    &fresh.per_k[..],
                    "cadence {cadence} task {t} batch {batch_no}: segmented diverged"
                );
                assert_eq!(
                    hull.results(),
                    &fresh.per_k[..],
                    "cadence {cadence} task {t} batch {batch_no}: hull diverged"
                );
                let seg_steps = seg.checkpoint_stats().unwrap().replayed_steps;
                let hull_steps = hull.checkpoint_stats().unwrap().replayed_steps;
                if batch_no == 0 {
                    assert_eq!(
                        seg_report.segments,
                        vec![(6, 6), (61, 61)],
                        "cadence {cadence} task {t}: sparse batch segments"
                    );
                    assert_eq!(
                        hull_report.segments,
                        vec![(6, 61)],
                        "cadence {cadence} task {t}: hull batch segments"
                    );
                    assert_eq!(seg_report.recomputed, hull_report.recomputed);
                    assert!(
                        seg_steps - prev_seg < hull_steps - prev_hull,
                        "cadence {cadence} task {t}: segmented replayed {} steps, hull {}",
                        seg_steps - prev_seg,
                        hull_steps - prev_hull
                    );
                }
                prev_seg = seg_steps;
                prev_hull = hull_steps;
            }
            let seg_stats = seg.checkpoint_stats().unwrap();
            let hull_stats = hull.checkpoint_stats().unwrap();
            assert!(
                seg_stats.segments > hull_stats.segments,
                "cadence {cadence} task {t}: {seg_stats:?} vs {hull_stats:?}"
            );
        }
    }
}

/// ≥ 100 seeded edit sequences: after **every** edit, the monitor's
/// cached results must equal a fresh `Audit::run` over the edited
/// dataset and ranking — for score updates (including ones creating and
/// breaking ties), no-op updates, and insertions.
#[test]
fn monitor_delta_reaudits_match_fresh_audits_across_edit_sequences() {
    let mut rng = StdRng::seed_from_u64(0x3D17);
    let mut sequences = 0;
    while sequences < 104 {
        let rows = rng.random_range(10..40usize);
        let attrs = rng.random_range(2..4usize);
        let mut ds = random_dataset(
            rng.random::<u64>() % 100_000,
            RandomSpec {
                rows,
                attrs,
                max_card: 3,
            },
        );
        // Small integer scores: ties are the norm.
        let scores: Vec<f64> = (0..rows)
            .map(|_| rng.random_range(0..9usize) as f64)
            .collect();
        ds.push_column(rankfair::data::Column::numeric("score", scores))
            .unwrap();
        let tau = rng.random_range(0..6usize);
        let k_max = rng.random_range(2..=rows);
        let cfg = DetectConfig::new(tau, 1, k_max);
        let task = match rng.random_range(0..4usize) {
            0 => AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(
                rng.random_range(1..4usize),
            ))),
            1 => AuditTask::UnderRep(BiasMeasure::Proportional {
                alpha: [0.5, 0.8, 1.2][rng.random_range(0..3usize)],
            }),
            2 => AuditTask::OverRep {
                upper: Bounds::LinearFraction([0.2, 0.5][rng.random_range(0..2usize)]),
                scope: if rng.random::<bool>() {
                    OverRepScope::MostSpecific
                } else {
                    OverRepScope::MostGeneral
                },
            },
            _ => AuditTask::Combined {
                lower: Bounds::constant(rng.random_range(1..3usize)),
                upper: Bounds::constant(rng.random_range(0..3usize)),
            },
        };
        let ascending = rng.random::<bool>();
        let monitor = MonitorAudit::builder(ds, "score")
            .ascending(ascending)
            .build(cfg.clone(), task.clone(), Engine::Optimized);
        let mut monitor = match monitor {
            Ok(m) => m,
            Err(e) => panic!("monitor build failed: {e}"),
        };
        sequences += 1;
        for _edit in 0..6 {
            let n = monitor.n_rows();
            let edit = if rng.random_range(0..4usize) == 0 {
                // Insert a row with cells sampled from existing labels.
                let cells: Vec<RowValue> = monitor
                    .dataset()
                    .columns()
                    .iter()
                    .map(|c| {
                        if c.is_categorical() {
                            let card = c.cardinality().unwrap();
                            let code = rng.random_range(0..card) as u16;
                            RowValue::Label(c.label_of(code).unwrap().to_string())
                        } else {
                            RowValue::Number(rng.random_range(0..9usize) as f64)
                        }
                    })
                    .collect();
                RankingEdit::Insert { cells }
            } else {
                RankingEdit::ScoreUpdate {
                    row: rng.random_range(0..n) as u32,
                    score: rng.random_range(0..9usize) as f64,
                }
            };
            monitor.apply(&[edit]).unwrap();
            // The ground truth: a fresh audit of the monitor's current
            // dataset under its current ranking.
            let fresh = Audit::builder(Arc::new(monitor.dataset().clone()))
                .ranking(monitor.ranking())
                .build()
                .unwrap()
                .run(&cfg, &task, Engine::Optimized)
                .unwrap();
            assert_eq!(
                monitor.results(),
                &fresh.per_k[..],
                "sequence {sequences}: monitor diverged from fresh audit"
            );
        }
    }
    // Multi-edit batches (mixed updates + inserts applied atomically)
    // must agree too.
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for _ in 0..8 {
        let rows = 24;
        let mut ds = random_dataset(
            rng.random::<u64>(),
            RandomSpec {
                rows,
                attrs: 3,
                max_card: 3,
            },
        );
        let scores: Vec<f64> = (0..rows)
            .map(|_| rng.random_range(0..7usize) as f64)
            .collect();
        ds.push_column(rankfair::data::Column::numeric("score", scores))
            .unwrap();
        let cfg = DetectConfig::new(2, 1, rows);
        let task = AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(2),
        };
        let mut monitor = MonitorAudit::builder(ds, "score")
            .build(cfg.clone(), task.clone(), Engine::Optimized)
            .unwrap();
        let batch: Vec<RankingEdit> = (0..5)
            .map(|i| {
                if i % 2 == 0 {
                    RankingEdit::ScoreUpdate {
                        row: rng.random_range(0..rows) as u32,
                        score: rng.random_range(0..7usize) as f64,
                    }
                } else {
                    let cells: Vec<RowValue> = monitor
                        .dataset()
                        .columns()
                        .iter()
                        .map(|c| {
                            if c.is_categorical() {
                                RowValue::Label(c.label_of(0).unwrap().to_string())
                            } else {
                                RowValue::Number(rng.random_range(0..7usize) as f64)
                            }
                        })
                        .collect();
                    RankingEdit::Insert { cells }
                }
            })
            .collect();
        monitor.apply(&batch).unwrap();
        let fresh = Audit::builder(Arc::new(monitor.dataset().clone()))
            .ranking(monitor.ranking())
            .build()
            .unwrap()
            .run(&cfg, &task, Engine::Optimized)
            .unwrap();
        let got: Vec<AuditKResult> = monitor.results().to_vec();
        assert_eq!(got, fresh.per_k);
    }
}
