//! Cross-crate integration tests: the full pipeline (synthetic data →
//! ranking → detection → explanation) on all three paper workloads,
//! through the owned `Audit` API.

use rankfair::core::{render_report, KResult};
use rankfair::explain::distribution::compare_distributions;
use rankfair::prelude::*;

fn under(audit: &Audit, cfg: &DetectConfig, measure: &BiasMeasure, engine: Engine) -> AuditOutcome {
    audit
        .run(cfg, &AuditTask::UnderRep(measure.clone()), engine)
        .unwrap()
}

fn check_workload(w: &Workload, tau: usize, attrs_cap: usize) {
    let audit = w.audit_with_attrs(attrs_cap).unwrap();
    let cfg = DetectConfig::new(tau, 10, 49);

    // Baseline and optimized engines agree for both measures.
    let bounds = Bounds::paper_default();
    let g_measure = BiasMeasure::GlobalLower(bounds.clone());
    let base_g = under(&audit, &cfg, &g_measure, Engine::Baseline);
    let opt_g = under(&audit, &cfg, &g_measure, Engine::Optimized);
    assert_eq!(base_g.per_k, opt_g.per_k, "{}: global mismatch", w.name);

    let p_measure = BiasMeasure::Proportional { alpha: 0.8 };
    let base_p = under(&audit, &cfg, &p_measure, Engine::Baseline);
    let opt_p = under(&audit, &cfg, &p_measure, Engine::Optimized);
    assert_eq!(
        base_p.per_k, opt_p.per_k,
        "{}: proportional mismatch",
        w.name
    );

    // The optimized algorithms examine fewer patterns.
    assert!(
        opt_g.stats.patterns_examined() < base_g.stats.patterns_examined(),
        "{}: no global gain",
        w.name
    );
    assert!(
        opt_p.stats.patterns_examined() < base_p.stats.patterns_examined(),
        "{}: no proportional gain",
        w.name
    );

    // Every reported group is substantial, biased and most general.
    for (out, measure) in [(&opt_g, &g_measure), (&opt_p, &p_measure)] {
        for kr in &out.per_k {
            for p in &kr.under {
                let (sd, count) = audit.index().counts(p, kr.k);
                assert!(sd >= tau);
                assert!(measure.is_biased(count, sd, kr.k, w.detection.n_rows()));
            }
            for a in &kr.under {
                for b in &kr.under {
                    assert!(a == b || !a.is_proper_subset_of(b));
                }
            }
        }
    }

    // Reports render with sizes and bounds.
    let task = AuditTask::UnderRep(g_measure);
    let text = render_report(&audit.report(&opt_g, &task));
    assert!(text.contains("k = 10"));
}

#[test]
fn student_pipeline() {
    let w = student_workload(0, 42);
    check_workload(&w, 50, 8);
}

#[test]
fn compas_pipeline() {
    let w = compas_workload(1500, 42);
    check_workload(&w, 50, 8);
}

#[test]
fn german_pipeline() {
    let w = german_workload(0, 42);
    check_workload(&w, 50, 8);
}

#[test]
fn explanation_surfaces_the_true_scoring_attribute() {
    // Student ranking is a function of G3: for any detected group the
    // surrogate's strongest attribute must be one of the grade columns.
    let w = student_workload(0, 42);
    let audit = w.audit().unwrap();
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(40)));
    let out = audit
        .run(&DetectConfig::new(50, 49, 49), &task, Engine::Optimized)
        .unwrap();
    let group_pattern = &out.per_k[0].under[0];
    let members = audit.group_members(group_pattern);
    assert!(!members.is_empty());

    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::fast());
    assert!(surrogate.fit_quality() > 0.8);
    let ex = surrogate.explain_group(&members);
    let top = &ex.ranked_attributes()[0].0;
    assert!(
        ["G1", "G2", "G3"].contains(&top.as_str()),
        "top attribute was {top}"
    );

    // Fig. 10d analogue: the top attribute distribution separates the
    // group from the top-k.
    let topk: Vec<u32> = w.ranking.top_k(49).to_vec();
    let cmp = compare_distributions(&w.raw, top, &topk, &members);
    assert!(cmp.total_variation() > 0.2);
}

#[test]
fn upper_bound_extension_on_workload() {
    let w = german_workload(0, 42);
    let audit = w.audit().unwrap();
    let cfg = DetectConfig::new(50, 49, 49);
    let task = AuditTask::Combined {
        lower: Bounds::constant(40),
        upper: Bounds::constant(45),
    };
    let combined = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    assert_eq!(combined.per_k.len(), 1);
    for p in &combined.per_k[0].over {
        let (sd, count) = audit.index().counts(p, 49);
        assert!(sd >= 50 && count > 45);
    }
}

#[test]
fn csv_roundtrip_preserves_detection_results() {
    use rankfair::data::csv::{read_csv_str, write_csv_string, CsvOptions};
    use std::sync::Arc;

    let w = student_workload(150, 9);
    let audit = w.audit().unwrap();
    let cfg = DetectConfig::new(20, 5, 30);
    let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
    let before = audit.run(&cfg, &task, Engine::Optimized).unwrap();

    // Serialize the detection dataset, reload it, re-run: the labels and
    // encodings survive the round trip, so results must be identical.
    let text = write_csv_string(&w.detection, ',');
    let force: Vec<String> = w.attr_names();
    let opts = CsvOptions {
        force_categorical: force,
        ..CsvOptions::default()
    };
    let reloaded = read_csv_str(&text, &opts).unwrap();
    let audit2 = Audit::builder(Arc::new(reloaded))
        .ranking(w.ranking.clone())
        .build()
        .unwrap();
    let after = audit2.run(&cfg, &task, Engine::Optimized).unwrap();

    let render = |out: &AuditOutcome, a: &Audit| -> Vec<Vec<String>> {
        out.per_k
            .iter()
            .map(|kr| {
                let mut v: Vec<String> = kr.under.iter().map(|p| a.describe(p)).collect();
                v.sort();
                v
            })
            .collect()
    };
    assert_eq!(render(&before, &audit), render(&after, &audit2));
}

#[test]
fn deadline_produces_truncated_but_valid_output() {
    let w = compas_workload(2000, 1);
    let audit = w.audit().unwrap();
    let cfg = DetectConfig::new(50, 10, 49).with_deadline(std::time::Duration::from_micros(200));
    let task = AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 });
    let out = audit.run(&cfg, &task, Engine::Baseline).unwrap();
    if out.stats.timed_out {
        assert!(out.per_k.len() < 40);
    }
    // Results that were produced are still exact prefixes.
    let full = audit
        .run(&DetectConfig::new(50, 10, 49), &task, Engine::Optimized)
        .unwrap();
    for (got, want) in out.per_k.iter().zip(&full.per_k) {
        assert_eq!(got, want);
    }
}

#[test]
fn streaming_matches_batch_on_workload() {
    let w = german_workload(0, 42);
    let audit = w.audit_with_attrs(8).unwrap();
    let cfg = DetectConfig::new(50, 10, 49);
    let task = AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::paper_default()));

    let batch = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    // The paper variant rebuilds at every bound step...
    assert!(batch.stats.full_searches > 1);
    // ...while the streaming path reclassifies the node store instead,
    // performing exactly one full search (the initial build) and
    // producing identical results.
    let mut stream = audit.run_streaming(&cfg, &task).unwrap();
    let streamed: Vec<AuditKResult> = stream.by_ref().collect();
    assert_eq!(batch.per_k, streamed);
    assert_eq!(stream.stats().full_searches, 1);
}

#[test]
fn multithreaded_run_is_byte_identical_on_workload() {
    use std::sync::Arc;
    let w = german_workload(0, 42);
    let names = w.attr_names();
    let seq = w.audit_with_attrs(8).unwrap();
    let par = Audit::builder(Arc::clone(&w.detection))
        .ranking(w.ranking.clone())
        .attributes(names.into_iter().take(8))
        .threads(4)
        .build()
        .unwrap();
    let cfg = DetectConfig::new(50, 10, 49);
    for task in [
        AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::paper_default())),
        AuditTask::UnderRep(BiasMeasure::Proportional { alpha: 0.8 }),
        AuditTask::Combined {
            lower: Bounds::constant(40),
            upper: Bounds::constant(45),
        },
    ] {
        let a = seq.run(&cfg, &task, Engine::Optimized).unwrap();
        let b = par.run(&cfg, &task, Engine::Optimized).unwrap();
        assert_eq!(a.per_k, b.per_k);
        let a_dets: Vec<KResult> = a.detection_output().per_k;
        let b_dets: Vec<KResult> = b.detection_output().per_k;
        assert_eq!(a_dets, b_dets);
    }
}

#[test]
fn permutation_importance_agrees_with_shapley_on_student() {
    use rankfair::explain::permutation_importance;

    let w = student_workload(200, 5);
    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::fast());
    let features = rankfair::explain::FeatureMatrix::from_dataset(&w.raw);
    let target = w.ranking.rank_vector();
    let imp = permutation_importance(surrogate.forest(), &features, &target, 2, 7);
    // The ranking is a function of G3; both attribution methods must put a
    // grade column on top.
    let top = &imp.ranked()[0].0;
    assert!(
        ["G1", "G2", "G3"].contains(&top.as_str()),
        "importance top: {top}"
    );
}
