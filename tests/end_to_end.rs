//! Cross-crate integration tests: the full pipeline (synthetic data →
//! ranking → detection → explanation) on all three paper workloads.

use rankfair::core::{render_report, upper};
use rankfair::explain::distribution::compare_distributions;
use rankfair::prelude::*;

fn check_workload(w: &Workload, tau: usize, attrs_cap: usize) {
    let names = w.attr_names();
    let attr_refs: Vec<&str> = names.iter().take(attrs_cap).map(String::as_str).collect();
    let det = Detector::with_ranking_over(&w.detection, w.ranking.clone(), &attr_refs).unwrap();
    let cfg = DetectConfig::new(tau, 10, 49);

    // Baseline and optimized algorithms agree for both measures.
    let bounds = Bounds::paper_default();
    let g_measure = BiasMeasure::GlobalLower(bounds.clone());
    let base_g = det.detect_baseline(&cfg, &g_measure);
    let opt_g = det.detect_global(&cfg, &bounds);
    assert_eq!(base_g.per_k, opt_g.per_k, "{}: global mismatch", w.name);

    let p_measure = BiasMeasure::Proportional { alpha: 0.8 };
    let base_p = det.detect_baseline(&cfg, &p_measure);
    let opt_p = det.detect_proportional(&cfg, 0.8);
    assert_eq!(base_p.per_k, opt_p.per_k, "{}: proportional mismatch", w.name);

    // The optimized algorithms examine fewer patterns.
    assert!(
        opt_g.stats.patterns_examined() < base_g.stats.patterns_examined(),
        "{}: no global gain",
        w.name
    );
    assert!(
        opt_p.stats.patterns_examined() < base_p.stats.patterns_examined(),
        "{}: no proportional gain",
        w.name
    );

    // Every reported group is substantial, biased and most general.
    for (out, measure) in [(&opt_g, &g_measure), (&opt_p, &p_measure)] {
        for kr in &out.per_k {
            for p in &kr.patterns {
                let (sd, count) = det.index().counts(p, kr.k);
                assert!(sd >= tau);
                assert!(measure.is_biased(count, sd, kr.k, w.detection.n_rows()));
            }
            for a in &kr.patterns {
                for b in &kr.patterns {
                    assert!(a == b || !a.is_proper_subset_of(b));
                }
            }
        }
    }

    // Reports render with sizes and bounds.
    let text = render_report(&det.report(&opt_g, &g_measure));
    assert!(text.contains("k = 10"));
}

#[test]
fn student_pipeline() {
    let w = student_workload(0, 42);
    check_workload(&w, 50, 8);
}

#[test]
fn compas_pipeline() {
    let w = compas_workload(1500, 42);
    check_workload(&w, 50, 8);
}

#[test]
fn german_pipeline() {
    let w = german_workload(0, 42);
    check_workload(&w, 50, 8);
}

#[test]
fn explanation_surfaces_the_true_scoring_attribute() {
    // Student ranking is a function of G3: for any detected group the
    // surrogate's strongest attribute must be one of the grade columns.
    let w = student_workload(0, 42);
    let det = Detector::with_ranking(&w.detection, w.ranking.clone()).unwrap();
    let out = det.detect_global(&DetectConfig::new(50, 49, 49), &Bounds::constant(40));
    let group_pattern = &out.per_k[0].patterns[0];
    let members = det.group_members(group_pattern);
    assert!(!members.is_empty());

    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::fast());
    assert!(surrogate.fit_quality() > 0.8);
    let ex = surrogate.explain_group(&members);
    let top = &ex.ranked_attributes()[0].0;
    assert!(
        ["G1", "G2", "G3"].contains(&top.as_str()),
        "top attribute was {top}"
    );

    // Fig. 10d analogue: the top attribute distribution separates the
    // group from the top-k.
    let topk: Vec<u32> = w.ranking.top_k(49).to_vec();
    let cmp = compare_distributions(&w.raw, top, &topk, &members);
    assert!(cmp.total_variation() > 0.2);
}

#[test]
fn upper_bound_extension_on_workload() {
    let w = german_workload(0, 42);
    let det = Detector::with_ranking(&w.detection, w.ranking.clone()).unwrap();
    let cfg = DetectConfig::new(50, 49, 49);
    let combined = upper::combined_bounds(
        det.index(),
        det.space(),
        &cfg,
        &Bounds::constant(40),
        &Bounds::constant(45),
    );
    assert_eq!(combined.len(), 1);
    for p in &combined[0].over_represented {
        let (sd, count) = det.index().counts(p, 49);
        assert!(sd >= 50 && count > 45);
    }
}

#[test]
fn csv_roundtrip_preserves_detection_results() {
    use rankfair::data::csv::{read_csv_str, write_csv_string, CsvOptions};

    let w = student_workload(150, 9);
    let det = Detector::with_ranking(&w.detection, w.ranking.clone()).unwrap();
    let cfg = DetectConfig::new(20, 5, 30);
    let before = det.detect_proportional(&cfg, 0.8);

    // Serialize the detection dataset, reload it, re-run: the labels and
    // encodings survive the round trip, so results must be identical.
    let text = write_csv_string(&w.detection, ',');
    let names = w.attr_names();
    let force: Vec<String> = names.clone();
    let opts = CsvOptions {
        force_categorical: force,
        ..CsvOptions::default()
    };
    let reloaded = read_csv_str(&text, &opts).unwrap();
    let det2 = Detector::with_ranking(&reloaded, w.ranking.clone()).unwrap();
    let after = det2.detect_proportional(&cfg, 0.8);

    let render = |out: &rankfair::core::DetectionOutput, d: &Detector| -> Vec<Vec<String>> {
        out.per_k
            .iter()
            .map(|kr| {
                let mut v: Vec<String> =
                    kr.patterns.iter().map(|p| d.describe(p)).collect();
                v.sort();
                v
            })
            .collect()
    };
    assert_eq!(render(&before, &det), render(&after, &det2));
}

#[test]
fn deadline_produces_truncated_but_valid_output() {
    let w = compas_workload(2000, 1);
    let det = Detector::with_ranking(&w.detection, w.ranking.clone()).unwrap();
    let cfg = DetectConfig::new(50, 10, 49).with_deadline(std::time::Duration::from_micros(200));
    let out = det.detect_baseline(&cfg, &BiasMeasure::Proportional { alpha: 0.8 });
    if out.stats.timed_out {
        assert!(out.per_k.len() < 40);
    }
    // Results that were produced are still exact prefixes.
    let full = det.detect_proportional(&DetectConfig::new(50, 10, 49), 0.8);
    for (got, want) in out.per_k.iter().zip(&full.per_k) {
        assert_eq!(got, want);
    }
}

#[test]
fn streaming_and_fast_steps_match_batch_on_workload() {
    use rankfair::core::{global_bounds_fast_steps, DetectionStream};

    let w = german_workload(0, 42);
    let names = w.attr_names();
    let attrs: Vec<&str> = names.iter().take(8).map(String::as_str).collect();
    let det = Detector::with_ranking_over(&w.detection, w.ranking.clone(), &attrs).unwrap();
    let cfg = DetectConfig::new(50, 10, 49);
    let bounds = Bounds::paper_default();

    let batch = det.detect_global(&cfg, &bounds);
    let fast = global_bounds_fast_steps(det.index(), det.space(), &cfg, &bounds);
    assert_eq!(batch.per_k, fast.per_k);
    // The extension performs exactly one full search (the initial build).
    assert_eq!(fast.stats.full_searches, 1);
    assert!(batch.stats.full_searches > 1); // paper variant rebuilt at steps

    let streamed: Vec<rankfair::core::KResult> =
        DetectionStream::global(det.index(), det.space(), &cfg, &bounds).collect();
    assert_eq!(batch.per_k, streamed);
}

#[test]
fn permutation_importance_agrees_with_shapley_on_student() {
    use rankfair::explain::permutation_importance;

    let w = student_workload(200, 5);
    let surrogate = RankSurrogate::fit(&w.raw, &w.ranking, &ExplainConfig::fast());
    let features = rankfair::explain::FeatureMatrix::from_dataset(&w.raw);
    let target = w.ranking.rank_vector();
    let imp = permutation_importance(surrogate.forest(), &features, &target, 2, 7);
    // The ranking is a function of G3; both attribution methods must put a
    // grade column on top.
    let top = &imp.ranked()[0].0;
    assert!(["G1", "G2", "G3"].contains(&top.as_str()), "importance top: {top}");
}
