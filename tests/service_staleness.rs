//! Audit-cache staleness: re-registering a dataset must atomically evict
//! the audits built on the old data — a subsequent audit must pay a
//! fresh build (`hit == false`) and reflect the **new** data, never the
//! pre-registration cached results. Covers both the in-memory and the
//! monitor-driven registration paths.

use std::sync::Arc;

use rankfair::core::{AuditTask, BiasMeasure, Bounds, DetectConfig, Engine, RankingEdit};
use rankfair::service::{AuditRequest, AuditService, MonitorSpec, RankingSpec};
use rankfair::synth::SynthConfig;

fn request(dataset: &str, kmax: usize) -> AuditRequest {
    AuditRequest {
        dataset: dataset.into(),
        attributes: Some(vec!["school".into(), "sex".into(), "address".into()]),
        bucketize: Vec::new(),
        ranking: RankingSpec::ByColumn {
            column: "G3".into(),
            ascending: false,
        },
        task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(3))),
        config: DetectConfig::new(10, 5, kmax),
        engine: Engine::Optimized,
    }
}

#[test]
fn reregistration_never_serves_the_pre_registration_audit() {
    let service = AuditService::new();
    // Two genuinely different datasets under one name: different row
    // counts and different seeds, so the result sets differ.
    let old = rankfair::synth::student(SynthConfig::new(80, 7));
    let new = rankfair::synth::student(SynthConfig::new(120, 8));
    service.register_dataset("students", Arc::new(old));

    let req = request("students", 20);
    let cold = service.handle(&req).unwrap();
    assert!(!cold.cache.hit);
    assert!(service.handle(&req).unwrap().cache.hit, "warm-up failed");
    let old_render = rankfair::core::json::reports_json(&cold.reports, cold.audit.space()).render();

    // Replace-evict: the very next audit must not see the cached audit.
    service.register_dataset("students", Arc::new(new));
    let after = service.handle(&req).unwrap();
    assert!(
        !after.cache.hit,
        "served the pre-registration cached audit after re-registration"
    );
    assert_eq!(after.audit.dataset().n_rows(), 120);
    let new_render =
        rankfair::core::json::reports_json(&after.reports, after.audit.space()).render();
    assert_ne!(
        old_render, new_render,
        "results did not change with the data"
    );
    // And the new audit is itself cacheable again.
    assert!(service.handle(&req).unwrap().cache.hit);
}

#[test]
fn reregistration_under_concurrency_is_never_stale() {
    // Hammer one key from several threads while the dataset is replaced:
    // every response must come from an audit whose dataset matches what
    // was registered at *some* point (80 or 120 rows), and after the
    // final registration settles, a fresh audit must see the final data.
    let service = AuditService::new();
    service.register_dataset(
        "students",
        Arc::new(rankfair::synth::student(SynthConfig::new(80, 7))),
    );
    let req = request("students", 20);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (service, req) = (&service, &req);
            s.spawn(move || {
                for _ in 0..8 {
                    let resp = service.handle(req).unwrap();
                    let rows = resp.audit.dataset().n_rows();
                    assert!(rows == 80 || rows == 120, "phantom dataset: {rows} rows");
                }
            });
        }
        s.spawn(|| {
            service.register_dataset(
                "students",
                Arc::new(rankfair::synth::student(SynthConfig::new(120, 8))),
            );
        });
    });
    let settled = service.handle(&req).unwrap();
    assert_eq!(settled.audit.dataset().n_rows(), 120);
}

#[test]
fn monitor_updates_are_a_registration_for_cache_purposes() {
    // The same staleness guarantee when the "registration" is a monitor
    // update republishing its evolved dataset.
    let service = AuditService::new();
    service.register_dataset(
        "students",
        Arc::new(rankfair::synth::student(SynthConfig::new(80, 7))),
    );
    let req = request("students", 20);
    let cold = service.handle(&req).unwrap();
    assert!(!cold.cache.hit);
    assert!(service.handle(&req).unwrap().cache.hit);

    service
        .register_monitor(
            "m",
            &MonitorSpec {
                dataset: "students".into(),
                rank_by: "G3".into(),
                ascending: false,
                attributes: Some(vec!["school".into(), "sex".into(), "address".into()]),
                task: AuditTask::UnderRep(BiasMeasure::GlobalLower(Bounds::constant(3))),
                config: DetectConfig::new(10, 5, 20),
                engine: Engine::Optimized,
                checkpoint_every: 8,
            },
        )
        .unwrap();
    service
        .monitor_update(
            "m",
            &[RankingEdit::ScoreUpdate {
                row: 0,
                score: 99.0,
            }],
        )
        .unwrap();
    let after = service.handle(&req).unwrap();
    assert!(!after.cache.hit, "stale audit after monitor update");
    assert_eq!(
        after.audit.dataset().column_by_name("G3").unwrap().value(0),
        99.0
    );
}
