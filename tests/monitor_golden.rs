//! Golden-file test of the monitor wire ops: the checked-in request
//! stream (register_monitor / snapshot / update / audit / error paths)
//! must produce byte-identical responses (timing stripped) on a serial
//! session, and identical payloads at any worker count. CI additionally
//! pipes the same files through the `rankfair serve` binary.

use std::io::Cursor;
use std::sync::Arc;

use rankfair::service::serve::{serve, ServeOptions};
use rankfair::service::AuditService;

fn data_file(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Re-renders a response line without its `cache` member — the one field
/// whose attribution is scheduling-dependent when concurrent cold
/// requests race for a shared key.
fn strip_cache(line: &str) -> String {
    match rankfair::json::parse(line).expect("response is JSON") {
        rankfair::json::Value::Obj(pairs) => {
            rankfair::json::Value::Obj(pairs.into_iter().filter(|(k, _)| k != "cache").collect())
                .render()
        }
        v => v.render(),
    }
}

fn run_session(requests: &str, workers: usize) -> String {
    let service = AuditService::new();
    service.register_dataset("fig1", Arc::new(rankfair::data::examples::students_fig1()));
    let mut out = Vec::new();
    let summary = serve(
        &service,
        Cursor::new(requests.to_string()),
        &mut out,
        &ServeOptions {
            workers,
            strip_timing: true,
        },
    )
    .unwrap();
    assert_eq!(summary.requests, 10);
    assert_eq!(summary.errors, 4);
    String::from_utf8(out).unwrap()
}

#[test]
fn monitor_session_matches_golden_file() {
    let requests = data_file("monitor_requests.jsonl");
    let golden = data_file("monitor_golden.jsonl");
    // Serial sessions are byte-deterministic (monitor mutations run as
    // barriers on the reader thread; timing is stripped).
    let got = run_session(&requests, 1);
    assert_eq!(got, golden);
    for line in got.lines() {
        rankfair::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    // Parallel sessions: identical payloads in identical order; only
    // cache-hit attribution of racing audits may differ.
    for workers in [4, 8] {
        let parallel = run_session(&requests, workers);
        let a: Vec<String> = golden.lines().map(strip_cache).collect();
        let b: Vec<String> = parallel.lines().map(strip_cache).collect();
        assert_eq!(a, b, "workers={workers}");
    }
}
