//! Integration tests pinning the paper’s worked examples and §VI-D case
//! study through the public `Audit` API.

use std::sync::Arc;

use rankfair::divergence::{divergent_subgroups, DivergenceConfig};
use rankfair::prelude::*;

fn fig1_audit() -> Audit {
    let ds = rankfair::data::examples::students_fig1();
    let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
    Audit::builder(Arc::new(ds))
        .ranker(&ranker)
        .build()
        .unwrap()
}

fn run_under(audit: &Audit, cfg: &DetectConfig, measure: BiasMeasure) -> AuditOutcome {
    audit
        .run(cfg, &AuditTask::UnderRep(measure), Engine::Optimized)
        .unwrap()
}

fn names(audit: &Audit, pats: &[Pattern]) -> Vec<String> {
    pats.iter().map(|p| audit.describe(p)).collect()
}

#[test]
fn example_2_3_sizes() {
    let audit = fig1_audit();
    let p = audit.space().pattern(&[("School", "GP")]).unwrap();
    assert_eq!(audit.index().counts(&p, 5), (8, 1));
}

#[test]
fn example_2_4_global_bound_violated_for_gp() {
    // L_{5,school=GP} = 2: only one GP student in the top-5.
    let audit = fig1_audit();
    let out = run_under(
        &audit,
        &DetectConfig::new(1, 5, 5),
        BiasMeasure::GlobalLower(Bounds::constant(2)),
    );
    let found = names(&audit, &out.per_k[0].under);
    assert!(found.contains(&"{School=GP}".to_string()));
    assert!(!found.contains(&"{School=MS}".to_string())); // 4 in top-5
}

#[test]
fn example_2_5_proportional_representation() {
    // Proportionate share of each school in the top-5 ≈ 2.5; with α = 0.8
    // the requirement is 2: GP (count 1) violates, MS (count 4) does not.
    let audit = fig1_audit();
    let out = run_under(
        &audit,
        &DetectConfig::new(1, 5, 5),
        BiasMeasure::Proportional { alpha: 0.8 },
    );
    let found = names(&audit, &out.per_k[0].under);
    assert!(found.contains(&"{School=GP}".to_string()));
    assert!(!found.contains(&"{School=MS}".to_string()));
}

#[test]
fn example_4_6_incremental_global_bounds() {
    let audit = fig1_audit();
    let out = run_under(
        &audit,
        &DetectConfig::new(4, 4, 5),
        BiasMeasure::GlobalLower(Bounds::constant(2)),
    );
    let k4 = names(&audit, &out.per_k[0].under);
    for e in ["{School=GP}", "{Address=U}", "{Failures=1}", "{Failures=2}"] {
        assert!(k4.contains(&e.to_string()), "missing {e} at k=4: {k4:?}");
    }
    let k5 = names(&audit, &out.per_k[1].under);
    for e in [
        "{Address=U, Failures=1}",
        "{Gender=F, Address=U}",
        "{Gender=M, Address=U}",
        "{Gender=F, Failures=1}",
        "{Address=R, Failures=1}",
    ] {
        assert!(k5.contains(&e.to_string()), "missing {e} at k=5: {k5:?}");
    }
    assert!(!k5.contains(&"{Address=U}".to_string()));
    assert!(!k5.contains(&"{Failures=1}".to_string()));
}

#[test]
fn example_4_9_incremental_proportional() {
    let audit = fig1_audit();
    let out = run_under(
        &audit,
        &DetectConfig::new(5, 4, 5),
        BiasMeasure::Proportional { alpha: 0.9 },
    );
    let k4 = names(&audit, &out.per_k[0].under);
    assert_eq!(k4, ["{School=GP}", "{Address=U}", "{Failures=1}"]);
    let k5 = names(&audit, &out.per_k[1].under);
    assert!(k5.contains(&"{Gender=F}".to_string()));
    assert_eq!(k5.len(), 4);
}

/// §III upper bounds on the running example: at k = 5 with U = 2, the
/// most specific substantial over-represented groups must all exceed the
/// bound and be pairwise incomparable — and agree with the baseline.
#[test]
fn upper_bound_extension_on_fig1() {
    let audit = fig1_audit();
    let cfg = DetectConfig::new(2, 5, 5);
    let task = AuditTask::OverRep {
        upper: Bounds::constant(2),
        scope: OverRepScope::MostSpecific,
    };
    let opt = audit.run(&cfg, &task, Engine::Optimized).unwrap();
    let base = audit.run(&cfg, &task, Engine::Baseline).unwrap();
    assert_eq!(opt.per_k, base.per_k);
    let over = &opt.per_k[0].over;
    assert!(!over.is_empty());
    for p in over {
        let (sd, count) = audit.index().counts(p, 5);
        assert!(sd >= 2 && count > 2, "{}", audit.describe(p));
    }
    for a in over {
        for b in over {
            assert!(a == b || !a.is_proper_subset_of(b));
        }
    }
}

/// §VI-D case study shape on the synthetic Student workload: the
/// proportional result is a subset of level-1 global results (plus
/// possibly deeper refinements), and the divergence framework reports a
/// strictly larger, subsumption-heavy set.
#[test]
fn case_study_shapes_hold() {
    let w = student_workload(0, 42);
    let attrs = ["school", "sex", "age", "address"];
    let audit = Audit::builder(Arc::clone(&w.detection))
        .ranking(w.ranking.clone())
        .attributes(attrs)
        .build()
        .unwrap();
    let cfg = DetectConfig::new(50, 10, 10);

    let global = run_under(&audit, &cfg, BiasMeasure::GlobalLower(Bounds::constant(10)));
    let prop = run_under(&audit, &cfg, BiasMeasure::Proportional { alpha: 0.8 });
    let g = &global.per_k[0].under;
    let p = &prop.per_k[0].under;

    // Proportional bias implies the group is also below the (generous)
    // global bound here, so every proportional level-1 result appears in
    // the global result set.
    for pat in p.iter().filter(|pat| pat.len() == 1) {
        assert!(
            g.contains(pat),
            "{} missing from global",
            audit.describe(pat)
        );
    }
    // The global list is at least as large (L = 10 flags everything that
    // does not own the whole top-10).
    assert!(g.len() >= p.len());

    // Divergence framework: same support threshold (0.13 ≈ 50/395).
    let cols: Vec<usize> = attrs
        .iter()
        .map(|a| w.detection.column_index(a).unwrap())
        .collect();
    let div = divergent_subgroups(
        &w.detection,
        &w.ranking,
        10,
        &DivergenceConfig {
            min_support: 0.13,
            max_len: 0,
            columns: Some(cols),
        },
    );
    assert!(
        div.len() > g.len(),
        "divergence returned {} ≤ global {}",
        div.len(),
        g.len()
    );
    // …and contains subsumed pairs, which our output never does.
    let has_subsumed = div.iter().any(|a| {
        div.iter()
            .any(|b| b.items.len() < a.items.len() && b.items.iter().all(|i| a.items.contains(i)))
    });
    assert!(has_subsumed);
    for a in g {
        for b in g {
            assert!(a == b || !a.is_proper_subset_of(b));
        }
    }
}

/// §III: “in 97.58% of the times, the number of the reported groups was
/// less than 100” — check the spirit of the claim on a parameter sweep.
#[test]
fn result_sets_are_usually_small() {
    // The paper's setting: attribute counts the baseline can handle and
    // parameters tuned so the output is readable. Use the demographic
    // prefix of the Student attributes (the bucketized grade columns are
    // heavily correlated with the ranking and would flag everything).
    let w = student_workload(0, 42);
    let audit = w.audit_with_attrs(10).unwrap();
    let mut total = 0usize;
    let mut small = 0usize;
    for tau in [30, 50, 80] {
        for alpha in [0.6, 0.8] {
            let out = run_under(
                &audit,
                &DetectConfig::new(tau, 10, 49),
                BiasMeasure::Proportional { alpha },
            );
            for kr in &out.per_k {
                total += 1;
                if kr.under.len() < 100 {
                    small += 1;
                }
            }
        }
    }
    let frac = small as f64 / total as f64;
    assert!(
        frac > 0.9,
        "only {frac:.2} of result sets were < 100 groups"
    );
}
