//! Integration tests pinning the paper’s worked examples and §VI-D case
//! study through the public facade API.

use rankfair::divergence::{divergent_subgroups, DivergenceConfig};
use rankfair::prelude::*;

fn fig1_detector(ds: &Dataset) -> Detector<'_> {
    let ranker = AttributeRanker::new(vec![SortKey::desc("Grade"), SortKey::asc("Failures")]);
    Detector::new(ds, &ranker).unwrap()
}

#[test]
fn example_2_3_sizes() {
    let ds = rankfair::data::examples::students_fig1();
    let det = fig1_detector(&ds);
    let p = det.space().pattern(&[("School", "GP")]).unwrap();
    assert_eq!(det.index().counts(&p, 5), (8, 1));
}

#[test]
fn example_2_4_global_bound_violated_for_gp() {
    // L_{5,school=GP} = 2: only one GP student in the top-5.
    let ds = rankfair::data::examples::students_fig1();
    let det = fig1_detector(&ds);
    let out = det.detect_global(&DetectConfig::new(1, 5, 5), &Bounds::constant(2));
    let names: Vec<String> = out.per_k[0]
        .patterns
        .iter()
        .map(|p| det.describe(p))
        .collect();
    assert!(names.contains(&"{School=GP}".to_string()));
    assert!(!names.contains(&"{School=MS}".to_string())); // 4 in top-5
}

#[test]
fn example_2_5_proportional_representation() {
    // Proportionate share of each school in the top-5 ≈ 2.5; with α = 0.8
    // the requirement is 2: GP (count 1) violates, MS (count 4) does not.
    let ds = rankfair::data::examples::students_fig1();
    let det = fig1_detector(&ds);
    let out = det.detect_proportional(&DetectConfig::new(1, 5, 5), 0.8);
    let names: Vec<String> = out.per_k[0]
        .patterns
        .iter()
        .map(|p| det.describe(p))
        .collect();
    assert!(names.contains(&"{School=GP}".to_string()));
    assert!(!names.contains(&"{School=MS}".to_string()));
}

#[test]
fn example_4_6_incremental_global_bounds() {
    let ds = rankfair::data::examples::students_fig1();
    let det = fig1_detector(&ds);
    let out = det.detect_global(&DetectConfig::new(4, 4, 5), &Bounds::constant(2));
    let k4: Vec<String> = out.per_k[0].patterns.iter().map(|p| det.describe(p)).collect();
    for e in ["{School=GP}", "{Address=U}", "{Failures=1}", "{Failures=2}"] {
        assert!(k4.contains(&e.to_string()), "missing {e} at k=4: {k4:?}");
    }
    let k5: Vec<String> = out.per_k[1].patterns.iter().map(|p| det.describe(p)).collect();
    for e in [
        "{Address=U, Failures=1}",
        "{Gender=F, Address=U}",
        "{Gender=M, Address=U}",
        "{Gender=F, Failures=1}",
        "{Address=R, Failures=1}",
    ] {
        assert!(k5.contains(&e.to_string()), "missing {e} at k=5: {k5:?}");
    }
    assert!(!k5.contains(&"{Address=U}".to_string()));
    assert!(!k5.contains(&"{Failures=1}".to_string()));
}

#[test]
fn example_4_9_incremental_proportional() {
    let ds = rankfair::data::examples::students_fig1();
    let det = fig1_detector(&ds);
    let out = det.detect_proportional(&DetectConfig::new(5, 4, 5), 0.9);
    let k4: Vec<String> = out.per_k[0].patterns.iter().map(|p| det.describe(p)).collect();
    assert_eq!(k4, ["{School=GP}", "{Address=U}", "{Failures=1}"]);
    let k5: Vec<String> = out.per_k[1].patterns.iter().map(|p| det.describe(p)).collect();
    assert!(k5.contains(&"{Gender=F}".to_string()));
    assert_eq!(k5.len(), 4);
}

/// §VI-D case study shape on the synthetic Student workload: the
/// proportional result is a subset of level-1 global results (plus
/// possibly deeper refinements), and the divergence framework reports a
/// strictly larger, subsumption-heavy set.
#[test]
fn case_study_shapes_hold() {
    let w = student_workload(0, 42);
    let attrs = ["school", "sex", "age", "address"];
    let det = Detector::with_ranking_over(&w.detection, w.ranking.clone(), &attrs).unwrap();
    let cfg = DetectConfig::new(50, 10, 10);

    let global = det.detect_global(&cfg, &Bounds::constant(10));
    let prop = det.detect_proportional(&cfg, 0.8);
    let g = &global.per_k[0].patterns;
    let p = &prop.per_k[0].patterns;

    // Proportional bias implies the group is also below the (generous)
    // global bound here, so every proportional level-1 result appears in
    // the global result set.
    for pat in p.iter().filter(|pat| pat.len() == 1) {
        assert!(g.contains(pat), "{} missing from global", det.describe(pat));
    }
    // The global list is at least as large (L = 10 flags everything that
    // does not own the whole top-10).
    assert!(g.len() >= p.len());

    // Divergence framework: same support threshold (0.13 ≈ 50/395).
    let cols: Vec<usize> = attrs
        .iter()
        .map(|a| w.detection.column_index(a).unwrap())
        .collect();
    let div = divergent_subgroups(
        &w.detection,
        &w.ranking,
        10,
        &DivergenceConfig {
            min_support: 0.13,
            max_len: 0,
            columns: Some(cols),
        },
    );
    assert!(
        div.len() > g.len(),
        "divergence returned {} ≤ global {}",
        div.len(),
        g.len()
    );
    // …and contains subsumed pairs, which our output never does.
    let has_subsumed = div.iter().any(|a| {
        div.iter().any(|b| {
            b.items.len() < a.items.len() && b.items.iter().all(|i| a.items.contains(i))
        })
    });
    assert!(has_subsumed);
    for a in g {
        for b in g {
            assert!(a == b || !a.is_proper_subset_of(b));
        }
    }
}

/// §III: “in 97.58% of the times, the number of the reported groups was
/// less than 100” — check the spirit of the claim on a parameter sweep.
#[test]
fn result_sets_are_usually_small() {
    // The paper's setting: attribute counts the baseline can handle and
    // parameters tuned so the output is readable. Use the demographic
    // prefix of the Student attributes (the bucketized grade columns are
    // heavily correlated with the ranking and would flag everything).
    let w = student_workload(0, 42);
    let names = w.attr_names();
    let attrs: Vec<&str> = names.iter().take(10).map(String::as_str).collect();
    let det = Detector::with_ranking_over(&w.detection, w.ranking.clone(), &attrs).unwrap();
    let mut total = 0usize;
    let mut small = 0usize;
    for tau in [30, 50, 80] {
        for alpha in [0.6, 0.8] {
            let out = det.detect_proportional(&DetectConfig::new(tau, 10, 49), alpha);
            for kr in &out.per_k {
                total += 1;
                if kr.patterns.len() < 100 {
                    small += 1;
                }
            }
        }
    }
    let frac = small as f64 / total as f64;
    assert!(frac > 0.9, "only {frac:.2} of result sets were < 100 groups");
}
