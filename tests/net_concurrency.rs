//! Many-monitors concurrency over the socket front-end: 64 monitors
//! registered and updated from 64 simultaneous TCP connections, with
//! audits and snapshots interleaved into every session.
//!
//! What this pins down, per the lane design in
//! `crates/service/src/session.rs`:
//!
//! - **No global stall**: all 64 sessions are held open at once (a
//!   barrier releases them together) and every one must run to
//!   completion. Under the old global reader barrier a slow update on
//!   one monitor would serialize the entire sweep; under a lane bug it
//!   would wedge — either way this test hangs instead of passing.
//! - **Per-monitor order**: each session rewrites row 0 of its
//!   monitor's dataset every round; last-writer-wins means the final
//!   score is exactly the last round's value only if updates applied
//!   in client order.
//! - **Final state ≡ fresh build**: after shutdown, every monitor's
//!   snapshot (rows + per-`k` reports) must equal a [`MonitorAudit`]
//!   built from scratch over the monitor's evolved dataset — the
//!   incremental path may not drift from a fresh [`Audit::run`], no
//!   matter how the 64 sessions interleaved.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

use rankfair::core::{AuditTask, Bounds, DetectConfig, Engine, MonitorAudit};
use rankfair::data::Column;
use rankfair::service::net::{serve_net, NetListeners, NetOptions};
use rankfair::service::AuditService;
use rankfair::synth::{random_dataset, RandomSpec};

const MONITORS: usize = 64;
const ROUNDS: usize = 6;
const ROWS: usize = 24;

/// Score written to `row` in `round` — distinct from every initial
/// score (`0..ROWS`), every row-0 sentinel, and every other update, so
/// the ranking never ties and a fresh rebuild is order-unambiguous.
fn unique_score(round: usize, row: usize) -> f64 {
    1_000.0 + (round * ROWS + row) as f64
}

/// Row-0 sentinel for `round`; the final value proves update order.
fn row0_score(round: usize) -> f64 {
    10_000.0 + round as f64
}

/// The monitor spec every session registers over the wire, mirrored
/// here for the fresh rebuild.
fn spec() -> (DetectConfig, AuditTask) {
    (
        DetectConfig::new(2, 2, ROWS),
        AuditTask::Combined {
            lower: Bounds::constant(2),
            upper: Bounds::constant(3),
        },
    )
}

/// One round-trip: write the request line, read one response line,
/// require in-band success echoing the request id.
fn round_trip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, id: usize, req: &str) {
    conn.write_all(format!("{req}\n").as_bytes())
        .expect("request write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    assert!(
        line.contains(r#""ok":true"#),
        "request failed in-band: {req} -> {line}"
    );
    assert!(
        line.contains(&format!(r#""id":{id}"#)),
        "response answers the wrong request: {req} -> {line}"
    );
}

/// One session: register monitor `i` over dataset `i`, then `ROUNDS`
/// rounds of update → audit → snapshot, each answered in order.
fn drive_monitor(addr: &str, barrier: &Barrier, i: usize) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    // Hold until all 64 sessions are connected: the whole sweep runs
    // with 64 live connections, so cross-monitor serialization (or a
    // lane deadlock) shows up as a hang, not a silently slow pass.
    barrier.wait();
    let mut id = 0usize;
    let reg = format!(
        concat!(
            r#"{{"id":{id},"op":"register_monitor","name":"m{i}","dataset":"ds{i}","#,
            r#""rank_by":"score","task":{{"type":"combined","lower":2,"upper":3}},"#,
            r#""config":{{"tau":2,"kmin":2,"kmax":{rows}}}}}"#
        ),
        id = id,
        i = i,
        rows = ROWS
    );
    round_trip(&mut conn, &mut reader, id, &reg);
    for round in 0..ROUNDS {
        let row = 1 + (round % (ROWS - 1));
        id += 1;
        let update = format!(
            concat!(
                r#"{{"id":{id},"op":"update","monitor":"m{i}","edits":["#,
                r#"{{"edit":"score","row":{row},"score":{a}}},"#,
                r#"{{"edit":"score","row":0,"score":{b}}}]}}"#
            ),
            id = id,
            i = i,
            row = row,
            a = unique_score(round, row),
            b = row0_score(round)
        );
        round_trip(&mut conn, &mut reader, id, &update);
        id += 1;
        let audit = format!(
            concat!(
                r#"{{"id":{id},"dataset":"ds{i}","ranking":{{"rank_by":"score"}},"#,
                r#""task":{{"type":"under","measure":{{"type":"global","lower":2}}}},"#,
                r#""config":{{"tau":2,"kmin":2,"kmax":8}}}}"#
            ),
            id = id,
            i = i
        );
        round_trip(&mut conn, &mut reader, id, &audit);
        id += 1;
        let snap = format!(r#"{{"id":{id},"op":"snapshot","monitor":"m{i}"}}"#);
        round_trip(&mut conn, &mut reader, id, &snap);
    }
}

#[test]
fn sixty_four_monitors_update_concurrently_and_match_fresh_builds() {
    let service = AuditService::new();
    let mut base = random_dataset(
        0xC0FFEE % 100_000,
        RandomSpec {
            rows: ROWS,
            attrs: 3,
            max_card: 3,
        },
    );
    base.push_column(Column::numeric(
        "score",
        (0..ROWS).map(|r| r as f64).collect(),
    ))
    .expect("score column");
    let base = Arc::new(base);
    // 64 registry names aliasing one snapshot: each monitor republishes
    // its own evolved copy under its own name, so sessions only ever
    // contend on the lanes, never on shared data.
    for i in 0..MONITORS {
        service.register_dataset(&format!("ds{i}"), Arc::clone(&base));
    }
    let listeners = NetListeners::bind(&["tcp:127.0.0.1:0".to_string()]).expect("bind");
    let addr = listeners.local_addrs().remove(0);
    let addr = addr.strip_prefix("tcp:").expect("tcp addr").to_string();
    let handle = listeners.handle();
    let opts = NetOptions {
        workers: 8,
        strip_timing: true,
        ..NetOptions::default()
    };
    let summary = std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_net(&service, listeners, &opts));
        let barrier = Barrier::new(MONITORS);
        std::thread::scope(|clients| {
            for i in 0..MONITORS {
                let addr = &addr;
                let barrier = &barrier;
                clients.spawn(move || drive_monitor(addr, barrier, i));
            }
        });
        handle.shutdown();
        server.join().expect("server thread")
    });
    assert_eq!(summary.connections, MONITORS);
    assert_eq!(summary.requests, MONITORS * (1 + 3 * ROUNDS));
    assert_eq!(summary.errors, 0);

    // Ground truth per monitor: order via the row-0 sentinel, then a
    // from-scratch rebuild over the evolved dataset.
    let (cfg, task) = spec();
    for i in 0..MONITORS {
        let name = format!("m{i}");
        let evolved = service
            .with_monitor_dataset(&name, |ds| ds.clone())
            .expect("monitor dataset");
        let score_col = evolved.column_index("score").expect("score column");
        assert_eq!(
            evolved.value(0, score_col),
            row0_score(ROUNDS - 1),
            "{name}: updates applied out of order"
        );
        for round in 0..ROUNDS {
            let row = 1 + (round % (ROWS - 1));
            assert_eq!(
                evolved.value(row, score_col),
                unique_score(round, row),
                "{name}: round {round} edit lost"
            );
        }
        let view = service.monitor_snapshot(&name).expect("snapshot");
        let fresh = MonitorAudit::builder(evolved, "score")
            .build(cfg.clone(), task.clone(), Engine::Optimized)
            .expect("fresh build");
        assert_eq!(view.rows, fresh.n_rows(), "{name}: row count diverged");
        assert_eq!(
            format!("{:?}", view.reports),
            format!("{:?}", fresh.reports()),
            "{name}: monitor state diverged from a fresh audit"
        );
    }
}
