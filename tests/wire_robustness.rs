//! Wire-protocol robustness: byte-level corruption of a valid request
//! stream must never panic the server. Every line the server answers is
//! either a valid response or an in-band `{"ok": false, ...}` error; a
//! corrupted stream that stops being valid UTF-8 surfaces as an I/O
//! error from `serve` — never a crash, never a half-written line.

use std::io::Cursor;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rankfair::service::serve::{serve, ServeOptions};
use rankfair::service::AuditService;

fn requests() -> Vec<u8> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/serve_requests.jsonl");
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn monitor_requests() -> Vec<u8> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/monitor_requests.jsonl");
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn run(input: Vec<u8>, workers: usize) -> std::io::Result<(usize, Vec<String>)> {
    let service = AuditService::new();
    service.register_dataset("fig1", Arc::new(rankfair::data::examples::students_fig1()));
    let mut out = Vec::new();
    let summary = serve(
        &service,
        Cursor::new(input),
        &mut out,
        &ServeOptions {
            workers,
            strip_timing: true,
        },
    )?;
    let text = String::from_utf8(out).expect("responses are always UTF-8");
    Ok((summary.requests, text.lines().map(str::to_string).collect()))
}

fn assert_lines_well_formed(lines: &[String]) {
    for line in lines {
        let v = rankfair::json::parse(line)
            .unwrap_or_else(|e| panic!("response is not JSON ({e}): {line}"));
        let ok = v
            .get("ok")
            .and_then(|b| b.as_bool())
            .unwrap_or_else(|| panic!("response without boolean `ok`: {line}"));
        if !ok {
            assert!(
                v.get("error").and_then(|e| e.get("kind")).is_some(),
                "error response without error.kind: {line}"
            );
        }
    }
}

/// Printable-ASCII corruption keeps the stream valid UTF-8, so the
/// server must answer **every** (non-empty) line in-band.
#[test]
fn printable_ascii_mutations_always_answer_in_band() {
    let base = requests();
    let mut rng = StdRng::seed_from_u64(0xF022);
    for case in 0..120 {
        let mut bytes = base.clone();
        match rng.random_range(0..3usize) {
            // Truncate at an arbitrary offset.
            0 => {
                let cut = rng.random_range(0..bytes.len());
                bytes.truncate(cut);
            }
            // Overwrite a byte with a random printable character.
            1 => {
                let at = rng.random_range(0..bytes.len());
                bytes[at] = rng.random_range(0x20usize..0x7f) as u8;
            }
            // Insert a random printable character.
            _ => {
                let at = rng.random_range(0..=bytes.len());
                let c = rng.random_range(0x20usize..0x7f) as u8;
                bytes.insert(at, c);
            }
        }
        let expected_lines = String::from_utf8(bytes.clone())
            .expect("printable mutations keep UTF-8 valid")
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let workers = [1, 4][case % 2];
        let (answered, lines) =
            run(bytes, workers).expect("valid-UTF-8 input must not be an I/O error");
        assert_eq!(answered, expected_lines, "case {case}");
        assert_eq!(lines.len(), expected_lines, "case {case}");
        assert_lines_well_formed(&lines);
    }
}

/// Arbitrary byte corruption (flips, insertions, truncation) may break
/// UTF-8 mid-stream: the server must still never panic, and everything
/// it *does* answer must be well-formed.
#[test]
fn arbitrary_byte_mutations_never_panic() {
    let base = requests();
    let mut rng = StdRng::seed_from_u64(0xB17E);
    for case in 0..120 {
        let mut bytes = base.clone();
        for _ in 0..=rng.random_range(0..4usize) {
            match rng.random_range(0..3usize) {
                0 => {
                    let cut = rng.random_range(0..bytes.len());
                    bytes.truncate(cut.max(1));
                }
                1 => {
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] = (rng.random::<u32>() & 0xff) as u8;
                }
                _ => {
                    let at = rng.random_range(0..=bytes.len());
                    bytes.insert(at, (rng.random::<u32>() & 0xff) as u8);
                }
            }
        }
        let workers = [1, 2, 8][case % 3];
        match run(bytes, workers) {
            Ok((_, lines)) => assert_lines_well_formed(&lines),
            // Invalid UTF-8 mid-stream: an I/O error is the contract —
            // the responses already written are still complete lines.
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "case {case}"),
        }
    }
}

/// The original, uncorrupted stream sanity-checks the harness itself.
#[test]
fn uncorrupted_stream_answers_every_line() {
    let (answered, lines) = run(requests(), 4).unwrap();
    assert_eq!(answered, 10);
    assert_eq!(lines.len(), 10);
    assert_lines_well_formed(&lines);
}

/// Byte-level corruption of the **monitor** op stream
/// (`register_monitor` / `update` / `snapshot`): a mangled `update` must
/// surface as an in-band error or a clean I/O stop, never as a panic — a
/// panicking serve worker would take the whole session down. This drives
/// the monitor's edit validation and the (debug-assert-guarded)
/// `RankedIndex::rewrite_span` patch path under every corruption the
/// wire can deliver.
#[test]
fn corrupted_monitor_update_streams_never_panic() {
    let base = monitor_requests();
    let mut rng = StdRng::seed_from_u64(0x0b5e);
    for case in 0..120 {
        let mut bytes = base.clone();
        for _ in 0..=rng.random_range(0..3usize) {
            match rng.random_range(0..4usize) {
                0 => {
                    let cut = rng.random_range(0..bytes.len());
                    bytes.truncate(cut.max(1));
                }
                1 => {
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] = rng.random_range(0x20usize..0x7f) as u8;
                }
                2 => {
                    let at = rng.random_range(0..=bytes.len());
                    bytes.insert(at, rng.random_range(0x20usize..0x7f) as u8);
                }
                _ => {
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] = (rng.random::<u32>() & 0xff) as u8;
                }
            }
        }
        let workers = [1, 2, 4][case % 3];
        match run(bytes, workers) {
            Ok((_, lines)) => assert_lines_well_formed(&lines),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "case {case}"),
        }
    }
}

/// Hostile but well-formed-JSON `update` ops — out-of-range and absurd
/// row ids, non-finite and overflowing scores, wrong-arity and
/// wrong-kind cells, unknown labels and columns, empty and nested edit
/// batches — every one must be answered in-band with `"ok": false`
/// while the monitor keeps serving correct snapshots afterwards.
#[test]
fn hostile_update_ops_answer_in_band() {
    let mut input = String::from(concat!(
        r#"{"id": 0, "op": "register_monitor", "name": "m", "dataset": "fig1", "#,
        r#""rank_by": "Grade", "task": {"type": "combined", "lower": 2, "upper": 3}, "#,
        r#""config": {"tau": 2, "kmin": 2, "kmax": 16}}"#,
        "\n",
    ));
    let hostile = [
        r#"{"edit": "score", "row": 4294967295, "score": 1}"#,
        // One past TupleId::MAX: a bare `as u32` cast would wrap this to
        // row 0 and silently re-score the wrong tuple.
        r#"{"edit": "score", "row": 4294967296, "score": 1}"#,
        r#"{"edit": "score", "row": 99999999999999999999, "score": 1}"#,
        r#"{"edit": "score", "row": -3, "score": 1}"#,
        r#"{"edit": "score", "row": 0, "score": 1e309}"#,
        r#"{"edit": "score", "row": 0.5, "score": 1}"#,
        r#"{"edit": "score", "row": 0}"#,
        r#"{"edit": "insert", "cells": {}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "F"}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "Address": "U", "Failures": "0", "Grade": 1, "Bogus": 2}}"#,
        r#"{"edit": "insert", "cells": {"Gender": 7, "School": "GP", "Address": "U", "Failures": "0", "Grade": 1}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "???", "School": "GP", "Address": "U", "Failures": "0", "Grade": 1}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "Address": "U", "Failures": "0", "Grade": "ten"}}"#,
        r#"{"edit": "teleport", "row": 1}"#,
        r#"{"edits": [{"edit": "score", "row": 0, "score": 2}]}"#,
        r#"[]"#,
        r#"17"#,
    ];
    for (i, edit) in hostile.iter().enumerate() {
        input.push_str(&format!(
            "{{\"id\": {}, \"op\": \"update\", \"monitor\": \"m\", \"edits\": [{edit}]}}\n",
            i + 1,
        ));
    }
    // A valid update and a snapshot close the session: the monitor must
    // still be alive and consistent after the onslaught.
    input.push_str(concat!(
        r#"{"id": 90, "op": "update", "monitor": "m", "edits": "#,
        r#"[{"edit": "score", "row": 5, "score": 19.5}]}"#,
        "\n",
    ));
    input.push_str("{\"id\": 91, \"op\": \"snapshot\", \"monitor\": \"m\"}\n");
    let (answered, lines) = run(input.into_bytes(), 2).expect("valid UTF-8 stream");
    assert_eq!(answered, hostile.len() + 3);
    assert_lines_well_formed(&lines);
    for line in &lines {
        let v = rankfair::json::parse(line).unwrap();
        // The non-finite-score line is rejected by the JSON parser
        // itself, so its in-band error carries no id.
        let id = v.get("id").and_then(|i| i.as_usize());
        let ok = v.get("ok").and_then(|b| b.as_bool()).unwrap();
        match id {
            Some(0) | Some(90) | Some(91) => assert!(ok, "expected success: {line}"),
            _ => assert!(!ok, "hostile edit must fail in-band: {line}"),
        }
    }
}
