//! Wire-protocol robustness: byte-level corruption of a valid request
//! stream must never panic the server. Every line the server answers is
//! either a valid response or an in-band `{"ok": false, ...}` error; a
//! corrupted stream that stops being valid UTF-8 surfaces as an I/O
//! error from `serve` — never a crash, never a half-written line.

use std::io::{BufRead as _, BufReader, Cursor, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rankfair::service::net::{serve_net, NetListeners, NetOptions, NetSummary};
use rankfair::service::serve::{serve, ServeOptions};
use rankfair::service::AuditService;

fn requests() -> Vec<u8> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/serve_requests.jsonl");
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn monitor_requests() -> Vec<u8> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/monitor_requests.jsonl");
    std::fs::read(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

fn run(input: Vec<u8>, workers: usize) -> std::io::Result<(usize, Vec<String>)> {
    let service = AuditService::new();
    service.register_dataset("fig1", Arc::new(rankfair::data::examples::students_fig1()));
    let mut out = Vec::new();
    let summary = serve(
        &service,
        Cursor::new(input),
        &mut out,
        &ServeOptions {
            workers,
            strip_timing: true,
        },
    )?;
    let text = String::from_utf8(out).expect("responses are always UTF-8");
    Ok((summary.requests, text.lines().map(str::to_string).collect()))
}

fn assert_lines_well_formed(lines: &[String]) {
    for line in lines {
        let v = rankfair::json::parse(line)
            .unwrap_or_else(|e| panic!("response is not JSON ({e}): {line}"));
        let ok = v
            .get("ok")
            .and_then(|b| b.as_bool())
            .unwrap_or_else(|| panic!("response without boolean `ok`: {line}"));
        if !ok {
            assert!(
                v.get("error").and_then(|e| e.get("kind")).is_some(),
                "error response without error.kind: {line}"
            );
        }
    }
}

/// Printable-ASCII corruption keeps the stream valid UTF-8, so the
/// server must answer **every** (non-empty) line in-band.
#[test]
fn printable_ascii_mutations_always_answer_in_band() {
    let base = requests();
    let mut rng = StdRng::seed_from_u64(0xF022);
    for case in 0..120 {
        let mut bytes = base.clone();
        match rng.random_range(0..3usize) {
            // Truncate at an arbitrary offset.
            0 => {
                let cut = rng.random_range(0..bytes.len());
                bytes.truncate(cut);
            }
            // Overwrite a byte with a random printable character.
            1 => {
                let at = rng.random_range(0..bytes.len());
                bytes[at] = rng.random_range(0x20usize..0x7f) as u8;
            }
            // Insert a random printable character.
            _ => {
                let at = rng.random_range(0..=bytes.len());
                let c = rng.random_range(0x20usize..0x7f) as u8;
                bytes.insert(at, c);
            }
        }
        let expected_lines = String::from_utf8(bytes.clone())
            .expect("printable mutations keep UTF-8 valid")
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let workers = [1, 4][case % 2];
        let (answered, lines) =
            run(bytes, workers).expect("valid-UTF-8 input must not be an I/O error");
        assert_eq!(answered, expected_lines, "case {case}");
        assert_eq!(lines.len(), expected_lines, "case {case}");
        assert_lines_well_formed(&lines);
    }
}

/// Arbitrary byte corruption (flips, insertions, truncation) may break
/// UTF-8 mid-stream: the server must still never panic, and everything
/// it *does* answer must be well-formed.
#[test]
fn arbitrary_byte_mutations_never_panic() {
    let base = requests();
    let mut rng = StdRng::seed_from_u64(0xB17E);
    for case in 0..120 {
        let mut bytes = base.clone();
        for _ in 0..=rng.random_range(0..4usize) {
            match rng.random_range(0..3usize) {
                0 => {
                    let cut = rng.random_range(0..bytes.len());
                    bytes.truncate(cut.max(1));
                }
                1 => {
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] = (rng.random::<u32>() & 0xff) as u8;
                }
                _ => {
                    let at = rng.random_range(0..=bytes.len());
                    bytes.insert(at, (rng.random::<u32>() & 0xff) as u8);
                }
            }
        }
        let workers = [1, 2, 8][case % 3];
        match run(bytes, workers) {
            Ok((_, lines)) => assert_lines_well_formed(&lines),
            // Invalid UTF-8 mid-stream: an I/O error is the contract —
            // the responses already written are still complete lines.
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "case {case}"),
        }
    }
}

/// The original, uncorrupted stream sanity-checks the harness itself.
#[test]
fn uncorrupted_stream_answers_every_line() {
    let (answered, lines) = run(requests(), 4).unwrap();
    assert_eq!(answered, 10);
    assert_eq!(lines.len(), 10);
    assert_lines_well_formed(&lines);
}

/// Byte-level corruption of the **monitor** op stream
/// (`register_monitor` / `update` / `snapshot`): a mangled `update` must
/// surface as an in-band error or a clean I/O stop, never as a panic — a
/// panicking serve worker would take the whole session down. This drives
/// the monitor's edit validation and the (debug-assert-guarded)
/// `RankedIndex::rewrite_span` patch path under every corruption the
/// wire can deliver.
#[test]
fn corrupted_monitor_update_streams_never_panic() {
    let base = monitor_requests();
    let mut rng = StdRng::seed_from_u64(0x0b5e);
    for case in 0..120 {
        let mut bytes = base.clone();
        for _ in 0..=rng.random_range(0..3usize) {
            match rng.random_range(0..4usize) {
                0 => {
                    let cut = rng.random_range(0..bytes.len());
                    bytes.truncate(cut.max(1));
                }
                1 => {
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] = rng.random_range(0x20usize..0x7f) as u8;
                }
                2 => {
                    let at = rng.random_range(0..=bytes.len());
                    bytes.insert(at, rng.random_range(0x20usize..0x7f) as u8);
                }
                _ => {
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] = (rng.random::<u32>() & 0xff) as u8;
                }
            }
        }
        let workers = [1, 2, 4][case % 3];
        match run(bytes, workers) {
            Ok((_, lines)) => assert_lines_well_formed(&lines),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData, "case {case}"),
        }
    }
}

/// Hostile but well-formed-JSON `update` ops — out-of-range and absurd
/// row ids, non-finite and overflowing scores, wrong-arity and
/// wrong-kind cells, unknown labels and columns, empty and nested edit
/// batches — every one must be answered in-band with `"ok": false`
/// while the monitor keeps serving correct snapshots afterwards.
#[test]
fn hostile_update_ops_answer_in_band() {
    let mut input = String::from(concat!(
        r#"{"id": 0, "op": "register_monitor", "name": "m", "dataset": "fig1", "#,
        r#""rank_by": "Grade", "task": {"type": "combined", "lower": 2, "upper": 3}, "#,
        r#""config": {"tau": 2, "kmin": 2, "kmax": 16}}"#,
        "\n",
    ));
    let hostile = [
        r#"{"edit": "score", "row": 4294967295, "score": 1}"#,
        // One past TupleId::MAX: a bare `as u32` cast would wrap this to
        // row 0 and silently re-score the wrong tuple.
        r#"{"edit": "score", "row": 4294967296, "score": 1}"#,
        r#"{"edit": "score", "row": 99999999999999999999, "score": 1}"#,
        r#"{"edit": "score", "row": -3, "score": 1}"#,
        r#"{"edit": "score", "row": 0, "score": 1e309}"#,
        r#"{"edit": "score", "row": 0.5, "score": 1}"#,
        r#"{"edit": "score", "row": 0}"#,
        r#"{"edit": "insert", "cells": {}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "F"}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "Address": "U", "Failures": "0", "Grade": 1, "Bogus": 2}}"#,
        r#"{"edit": "insert", "cells": {"Gender": 7, "School": "GP", "Address": "U", "Failures": "0", "Grade": 1}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "???", "School": "GP", "Address": "U", "Failures": "0", "Grade": 1}}"#,
        r#"{"edit": "insert", "cells": {"Gender": "F", "School": "GP", "Address": "U", "Failures": "0", "Grade": "ten"}}"#,
        r#"{"edit": "teleport", "row": 1}"#,
        r#"{"edits": [{"edit": "score", "row": 0, "score": 2}]}"#,
        r#"[]"#,
        r#"17"#,
    ];
    for (i, edit) in hostile.iter().enumerate() {
        input.push_str(&format!(
            "{{\"id\": {}, \"op\": \"update\", \"monitor\": \"m\", \"edits\": [{edit}]}}\n",
            i + 1,
        ));
    }
    // A valid update and a snapshot close the session: the monitor must
    // still be alive and consistent after the onslaught.
    input.push_str(concat!(
        r#"{"id": 90, "op": "update", "monitor": "m", "edits": "#,
        r#"[{"edit": "score", "row": 5, "score": 19.5}]}"#,
        "\n",
    ));
    input.push_str("{\"id\": 91, \"op\": \"snapshot\", \"monitor\": \"m\"}\n");
    let (answered, lines) = run(input.into_bytes(), 2).expect("valid UTF-8 stream");
    assert_eq!(answered, hostile.len() + 3);
    assert_lines_well_formed(&lines);
    for line in &lines {
        let v = rankfair::json::parse(line).unwrap();
        // The non-finite-score line is rejected by the JSON parser
        // itself, so its in-band error carries no id.
        let id = v.get("id").and_then(|i| i.as_usize());
        let ok = v.get("ok").and_then(|b| b.as_bool()).unwrap();
        match id {
            Some(0) | Some(90) | Some(91) => assert!(ok, "expected success: {line}"),
            _ => assert!(!ok, "hostile edit must fail in-band: {line}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Socket framing: the same robustness contract over the TCP front-end.
// The socket reader reassembles lines from arbitrary segment boundaries,
// so every split, stall, and disconnect the transport can produce must
// leave the server answering in-band or closing cleanly — never stuck,
// never panicking, never emitting a half-written line.
// ---------------------------------------------------------------------------

/// Runs `serve_net` on a loopback TCP listener with `fig1` preloaded and
/// hands the client closure the `host:port` address. Shuts the server
/// down once the closure returns and reports the summary alongside the
/// closure's result.
fn with_net_server<T: Send>(
    opts: NetOptions,
    client: impl FnOnce(&str) -> T + Send,
) -> (NetSummary, T) {
    let service = AuditService::new();
    service.register_dataset("fig1", Arc::new(rankfair::data::examples::students_fig1()));
    let listeners = NetListeners::bind(&["tcp:127.0.0.1:0".to_string()]).unwrap();
    let addr = listeners.local_addrs().remove(0);
    let addr = addr.strip_prefix("tcp:").unwrap().to_string();
    let handle = listeners.handle();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| serve_net(&service, listeners, &opts));
        let out = client(&addr);
        handle.shutdown();
        (server.join().expect("server thread"), out)
    })
}

/// Lines split across TCP segments: the request stream dribbled to the
/// socket in tiny random chunks (1–6 bytes, i.e. every request arrives
/// across many partial writes) must produce **byte-identical** responses
/// to the stdio transport over the same bytes.
#[test]
fn socket_lines_split_across_segments_match_stdio() {
    let base = requests();
    let (_, stdio_lines) = run(base.clone(), 1).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5E61);
    for case in 0..4 {
        let opts = NetOptions {
            workers: 1,
            strip_timing: true,
            ..NetOptions::default()
        };
        let (summary, lines) = with_net_server(opts, |addr| {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.set_nodelay(true).unwrap();
            let mut pos = 0;
            let mut chunks = 0usize;
            while pos < base.len() {
                let end = (pos + rng.random_range(1..=6usize)).min(base.len());
                conn.write_all(&base[pos..end]).unwrap();
                chunks += 1;
                // An occasional stall between segments exercises the
                // reader's timeout-and-retry path mid-line.
                if chunks.is_multiple_of(64) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                pos = end;
            }
            let reader = BufReader::new(conn);
            reader
                .lines()
                .take(stdio_lines.len())
                .map(|l| l.unwrap())
                .collect::<Vec<String>>()
        });
        assert_eq!(lines, stdio_lines, "case {case}");
        assert_eq!(summary.requests, stdio_lines.len(), "case {case}");
        // The fixture deliberately includes bad requests; the socket
        // transport must count exactly the same in-band errors.
        let expected_errors = stdio_lines
            .iter()
            .filter(|l| l.contains(r#""ok":false"#))
            .count();
        assert_eq!(summary.errors, expected_errors, "case {case}");
    }
}

/// Mid-line disconnects: a client that cuts the stream at an arbitrary
/// byte offset and half-closes gets an answer for every **complete**
/// line it managed to send — the trailing unterminated fragment is
/// dropped, the connection closes cleanly, and the server keeps
/// accepting fresh connections afterwards.
#[test]
fn mid_line_disconnects_answer_complete_lines_then_close() {
    let base = requests();
    let opts = NetOptions {
        workers: 2,
        strip_timing: true,
        ..NetOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(0xD15C);
    const CASES: usize = 10;
    let (summary, ()) = with_net_server(opts, |addr| {
        for case in 0..CASES {
            let cut = rng.random_range(1..base.len());
            let prefix = &base[..cut];
            // Complete lines are everything before the last newline;
            // blank ones are skipped, per the wire contract.
            let expected = String::from_utf8_lossy(prefix)
                .rsplit_once('\n')
                .map_or(0, |(head, _)| {
                    head.lines().filter(|l| !l.trim().is_empty()).count()
                });
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(prefix).unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let reader = BufReader::new(conn);
            let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
            assert_eq!(lines.len(), expected, "case {case} (cut at {cut})");
            assert_lines_well_formed(&lines);
        }
    });
    assert_eq!(summary.connections, CASES);
}

/// Oversized lines against the read cap: a line **at** `max_line_bytes`
/// is still parsed (and answered in-band, here as a JSON error), one
/// byte **over** draws an in-band `bad_request` naming the cap and the
/// connection is closed — the reader never buffers past the limit.
#[test]
fn oversized_lines_hit_the_read_cap_in_band() {
    let opts = NetOptions {
        workers: 1,
        strip_timing: true,
        max_line_bytes: 512,
        ..NetOptions::default()
    };
    let first_request = {
        let base = requests();
        let eol = base.iter().position(|&b| b == b'\n').unwrap();
        base[..=eol].to_vec()
    };
    let (summary, ()) = with_net_server(opts, |addr| {
        // Exactly at the cap: garbage JSON, but framed fine — answered
        // in-band and the session stays open for a valid follow-up.
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut at_cap = vec![b'x'; 512];
        at_cap.push(b'\n');
        conn.write_all(&at_cap).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains(r#""ok":false"#) && line.contains("bad_request"),
            "at-cap garbage answered in-band: {line}"
        );
        conn.write_all(&first_request).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains(r#""ok":true"#),
            "session survives an at-cap line: {line}"
        );
        drop((conn, reader));

        // One byte over: in-band error naming the cap, then EOF.
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut over = vec![b'y'; 513];
        over.push(b'\n');
        conn.write_all(&over).unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains(r#""ok":false"#) && line.contains("512"),
            "over-cap line names the cap: {line}"
        );
        line.clear();
        assert_eq!(
            reader.read_line(&mut line).unwrap(),
            0,
            "connection closes after an over-cap line"
        );
    });
    assert_eq!(summary.connections, 2);
}

/// A client that pipelines far past the window and never reads: the
/// pipeline gate bounds what the server buffers (memory stays bounded
/// instead of OOMing), other connections stay fully served, and once
/// the stalled client finally reads it receives every response in
/// order.
#[test]
fn never_reading_client_stalls_only_itself() {
    const BACKLOG: usize = 4_000;
    let opts = NetOptions {
        workers: 2,
        strip_timing: true,
        pipeline_window: 8,
        ..NetOptions::default()
    };
    let first_request = {
        let base = requests();
        let eol = base.iter().position(|&b| b == b'\n').unwrap();
        base[..=eol].to_vec()
    };
    let (summary, ()) = with_net_server(opts, |addr| {
        let stalled = TcpStream::connect(addr).unwrap();
        let mut stalled_writer = stalled.try_clone().unwrap();
        // Blast requests without ever reading. The writes themselves
        // block once the 8-response window plus the kernel buffers
        // fill, so they run on their own thread.
        let pump = std::thread::spawn(move || {
            let line = b"{\"op\": \"datasets\"}\n";
            for _ in 0..BACKLOG {
                if stalled_writer.write_all(line).is_err() {
                    panic!("server dropped a backpressured connection");
                }
            }
        });
        std::thread::sleep(Duration::from_millis(100));

        // A second connection is answered while the first is wedged.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_nodelay(true).unwrap();
        conn.write_all(&first_request).unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains(r#""ok":true"#),
            "an independent connection must not stall: {line}"
        );
        drop(reader);

        // Draining the stalled connection yields every response, in
        // order, well-formed.
        let reader = BufReader::new(stalled);
        let mut ids = 0usize;
        let lines: Vec<String> = reader
            .lines()
            .take(BACKLOG)
            .map(|l| l.unwrap())
            .inspect(|_| ids += 1)
            .collect();
        assert_eq!(ids, BACKLOG);
        assert_lines_well_formed(&lines);
        pump.join().expect("pump thread");
    });
    assert_eq!(summary.requests, BACKLOG + 1);
    assert_eq!(summary.errors, 0);
}
